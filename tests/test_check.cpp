#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.h"
#include "check/report.h"
#include "check/vclock.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "simpi/mpi.h"
#include "topo/archetype.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace vgpu = stencil::vgpu;
namespace simpi = stencil::simpi;
namespace fault = stencil::fault;
namespace check = stencil::check;

using check::FindingKind;
using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::LocalDomain;
using stencil::Method;
using stencil::MethodFlags;
using stencil::PackMode;
using stencil::RankCtx;

namespace {

std::string dump(const check::CheckReport& rep) {
  std::ostringstream os;
  rep.write(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// VClock / Epoch unit tests.
// ---------------------------------------------------------------------------

TEST(CheckVClock, JoinBumpAndLeq) {
  check::VClock a, b;
  EXPECT_TRUE(a.leq(b));
  const std::uint64_t e1 = a.bump(3);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(a.get(3), 1u);
  EXPECT_EQ(a.get(7), 0u);  // absent tids read as zero
  EXPECT_FALSE(a.leq(b));
  b.bump(3);
  b.bump(3);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  a.bump(9);
  b.join(a);
  EXPECT_EQ(b.get(3), 2u);  // join keeps the per-component max
  EXPECT_EQ(b.get(9), 1u);
  EXPECT_TRUE(a.leq(b));
}

TEST(CheckVClock, EpochOrderedBefore) {
  check::VClock c;
  c.bump(4);
  c.bump(4);
  EXPECT_TRUE((check::Epoch{4, 2}.ordered_before(c)));
  EXPECT_FALSE((check::Epoch{4, 3}.ordered_before(c)));
  EXPECT_FALSE((check::Epoch{5, 1}.ordered_before(c)));
}

// ---------------------------------------------------------------------------
// Runtime-level fixtures: one actor driving the virtual CUDA runtime, with
// the checker attached directly (no MPI job, so finish() is called by hand).
// ---------------------------------------------------------------------------

template <typename F>
check::CheckReport run_checked(F&& body, int nodes = 1) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), nodes);
  vgpu::Runtime rt(eng, machine);
  check::Checker chk(eng);
  rt.set_checker(&chk);
  eng.run({[&] { body(rt); }});
  chk.finish();
  return chk.report();
}

TEST(CheckRaces, UnorderedWritesOnTwoStreamsRace) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 1024);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    rt.launch_kernel(s1, 1024, "w1", [] {}, {{&buf, 0, 1024, true}});
    rt.launch_kernel(s2, 1024, "w2", [] {}, {{&buf, 0, 1024, true}});
    rt.stream_synchronize(s1);
    rt.stream_synchronize(s2);
  });
  ASSERT_EQ(rep.count(FindingKind::kWriteWriteRace), 1u) << dump(rep);
  const check::Finding& f = rep.findings()[0];
  // The finding names both racing ops and the missing ordering edge.
  EXPECT_NE(f.first.find("w1"), std::string::npos) << f.first;
  EXPECT_NE(f.second.find("w2"), std::string::npos) << f.second;
  EXPECT_NE(f.missing_edge.find("no happens-before edge"), std::string::npos) << f.missing_edge;
}

TEST(CheckRaces, EventEdgeOrdersStreams) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 1024);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    rt.launch_kernel(s1, 1024, "w1", [] {}, {{&buf, 0, 1024, true}});
    vgpu::Event done;
    rt.record_event(done, s1);
    rt.stream_wait_event(s2, done);
    rt.launch_kernel(s2, 1024, "w2", [] {}, {{&buf, 0, 1024, true}});
    rt.stream_synchronize(s1);
    rt.stream_synchronize(s2);
  });
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(CheckRaces, SameStreamFifoIsOrdered) {
  // The KERNEL pattern: a self-exchange reads and rewrites overlapping
  // ranges of one allocation, back to back, on a single stream.
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 4096);
    auto s = rt.create_stream(0);
    for (int it = 0; it < 3; ++it) {
      rt.launch_kernel(s, 4096, "self", [] {},
                       {{&buf, 0, 2048, false}, {&buf, 2048, 2048, true}});
      rt.launch_kernel(s, 4096, "compute", [] {},
                       {{&buf, 0, 4096, true}});
    }
    rt.stream_synchronize(s);
  });
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(CheckRaces, OverlappingRangesSplitSegments) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 1024);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    // Disjoint halves never race; a partial overlap does.
    rt.launch_kernel(s1, 512, "left", [] {}, {{&buf, 0, 512, true}});
    rt.launch_kernel(s2, 512, "right", [] {}, {{&buf, 512, 512, true}});
    rt.launch_kernel(s2, 512, "middle", [] {}, {{&buf, 256, 512, true}});
    rt.stream_synchronize(s1);
    rt.stream_synchronize(s2);
  });
  // "middle" overlaps "left" on [256,512) only; "right" is FIFO-ordered
  // with "middle" on s2.
  ASSERT_EQ(rep.count(FindingKind::kWriteWriteRace), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].first.find("left"), std::string::npos);
  EXPECT_NE(rep.findings()[0].second.find("middle"), std::string::npos);
}

TEST(CheckRaces, ReadWriteRaceAcrossStreams) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 256);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    rt.launch_kernel(s1, 256, "reader", [] {}, {{&buf, 0, 256, false}});
    rt.launch_kernel(s2, 256, "writer", [] {}, {{&buf, 0, 256, true}});
    rt.stream_synchronize(s1);
    rt.stream_synchronize(s2);
  });
  ASSERT_EQ(rep.count(FindingKind::kReadWriteRace), 1u) << dump(rep);
  EXPECT_EQ(rep.count(FindingKind::kWriteWriteRace), 0u) << dump(rep);
}

TEST(CheckRaces, LegacyDefaultStreamSerializes) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 256);
    auto dflt = rt.default_stream(0);
    auto s = rt.create_stream(0);
    rt.launch_kernel(dflt, 256, "on-default", [] {}, {{&buf, 0, 256, true}});
    rt.launch_kernel(s, 256, "after-default", [] {}, {{&buf, 0, 256, true}});
    rt.launch_kernel(dflt, 256, "default-again", [] {}, {{&buf, 0, 256, true}});
    rt.stream_synchronize(dflt);
    rt.stream_synchronize(s);
  });
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(CheckRaces, StreamSynchronizeOrdersThroughHost) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 256);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    rt.launch_kernel(s1, 256, "w1", [] {}, {{&buf, 0, 256, true}});
    rt.stream_synchronize(s1);
    rt.launch_kernel(s2, 256, "w2", [] {}, {{&buf, 0, 256, true}});
    rt.stream_synchronize(s2);
  });
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(CheckRaces, MemcpyAccessesAreDerivedAutomatically) {
  // The PEER pattern without its event edge: pack-copy on one stream,
  // consume on another. No annotations needed — copies know their buffers.
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto a = rt.alloc_device(0, 512);
    auto b = rt.alloc_device(0, 512);
    auto dst = rt.alloc_device(0, 512);
    auto s1 = rt.create_stream(0);
    auto s2 = rt.create_stream(0);
    rt.memcpy_async(dst, 0, a, 0, 512, s1);
    rt.memcpy_async(dst, 0, b, 0, 512, s2);
    rt.stream_synchronize(s1);
    rt.stream_synchronize(s2);
  });
  EXPECT_EQ(rep.count(FindingKind::kWriteWriteRace), 1u) << dump(rep);
}

// ---------------------------------------------------------------------------
// Runtime misuse lints.
// ---------------------------------------------------------------------------

TEST(CheckLints, WaitOnUnrecordedEvent) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto s = rt.create_stream(0);
    vgpu::Event never;
    rt.stream_wait_event(s, never);
    rt.event_synchronize(never);
  });
  EXPECT_EQ(rep.count(FindingKind::kWaitUnrecordedEvent), 2u) << dump(rep);
}

TEST(CheckLints, StreamDestroyedWithPendingWork) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 256);
    auto s = rt.create_stream(0);
    rt.launch_kernel(s, 256, "orphan", [] {}, {{&buf, 0, 256, true}});
    rt.destroy_stream(s);  // never synchronized
  });
  ASSERT_EQ(rep.count(FindingKind::kStreamDestroyedPending), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].second.find("orphan"), std::string::npos);
}

TEST(CheckLints, StreamDestroyedAfterSyncIsClean) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 256);
    auto s = rt.create_stream(0);
    rt.launch_kernel(s, 256, "ok", [] {}, {{&buf, 0, 256, true}});
    rt.stream_synchronize(s);
    rt.destroy_stream(s);
  });
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(CheckLints, UnsynchronizedStreamAtTeardown) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto buf = rt.alloc_device(0, 256);
    auto s = rt.create_stream(0);
    rt.launch_kernel(s, 256, "dangling", [] {}, {{&buf, 0, 256, true}});
    // Neither synchronized nor destroyed: finish() reports it.
  });
  EXPECT_EQ(rep.count(FindingKind::kStreamDestroyedPending), 1u) << dump(rep);
}

TEST(CheckLints, CopyThroughClosedIpcMapping) {
  auto rep = run_checked([](vgpu::Runtime& rt) {
    auto exported = rt.alloc_device(0, 256);
    auto src = rt.alloc_device(1, 256);
    auto s = rt.create_stream(1);
    auto handle = rt.ipc_get_mem_handle(exported);
    auto mapped = rt.ipc_open_mem_handle(handle, 1);
    rt.memcpy_to_ipc_async(mapped, 0, src, 0, 256, s);
    rt.stream_synchronize(s);
    rt.ipc_close_mem_handle(mapped);
    EXPECT_THROW(rt.memcpy_to_ipc_async(mapped, 0, src, 0, 256, s), std::logic_error);
  });
  ASSERT_EQ(rep.count(FindingKind::kStaleIpcMapping), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].second.find("closed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MPI-side fixtures: a real simpi::Job with the checker on both feeds.
// ---------------------------------------------------------------------------

struct CheckedWorld {
  sim::Engine eng;
  topo::Machine machine;
  vgpu::Runtime runtime;
  simpi::Job job;
  check::Checker chk;
  CheckedWorld(int nodes, int ranks_per_node)
      : machine(topo::summit(), nodes),
        runtime(eng, machine),
        job(eng, machine, runtime, ranks_per_node),
        chk(eng) {
    runtime.set_checker(&chk);
    job.set_checker(&chk);
  }
};

TEST(CheckMpi, SendBufferReuseBeforeWaitRaces) {
  CheckedWorld w(1, 2);
  constexpr std::size_t kBytes = 128 * 1024;  // above the eager limit
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    if (comm.rank() == 0) {
      auto payload = rt.alloc_pinned_host(0, kBytes);
      auto scratch = rt.alloc_device(0, kBytes);
      auto s = rt.create_stream(0);
      simpi::Request req = comm.isend(simpi::Payload::of(payload, 0, kBytes), 1, 7);
      // BUG under test: overwrite the in-flight send buffer before waiting.
      rt.memcpy_async(payload, 0, scratch, 0, kBytes, s);
      rt.stream_synchronize(s);
      comm.wait(req);
    } else {
      auto sink = rt.alloc_pinned_host(0, kBytes);
      comm.recv(simpi::Payload::of(sink, 0, kBytes), 0, 7);
    }
  });
  const auto& rep = w.chk.report();
  ASSERT_EQ(rep.count(FindingKind::kReadWriteRace), 1u) << dump(rep);
  const check::Finding& f = rep.findings()[0];
  EXPECT_NE(f.first.find("isend"), std::string::npos) << f.first;
  EXPECT_NE(f.missing_edge.find("no happens-before edge"), std::string::npos);
}

TEST(CheckMpi, WaitedSendThenReuseIsClean) {
  CheckedWorld w(1, 2);
  constexpr std::size_t kBytes = 128 * 1024;
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    if (comm.rank() == 0) {
      auto payload = rt.alloc_pinned_host(0, kBytes);
      auto scratch = rt.alloc_device(0, kBytes);
      auto s = rt.create_stream(0);
      simpi::Request req = comm.isend(simpi::Payload::of(payload, 0, kBytes), 1, 7);
      comm.wait(req);
      rt.memcpy_async(payload, 0, scratch, 0, kBytes, s);
      rt.stream_synchronize(s);
    } else {
      auto sink = rt.alloc_pinned_host(0, kBytes);
      comm.recv(simpi::Payload::of(sink, 0, kBytes), 0, 7);
    }
  });
  EXPECT_TRUE(w.chk.report().clean()) << dump(w.chk.report());
}

TEST(CheckMpi, BarrierOrdersCrossRankAccesses) {
  CheckedWorld w(1, 2);
  vgpu::Buffer shared;
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    if (comm.rank() == 0) {
      shared = rt.alloc_device(0, 512);
      auto s = rt.create_stream(0);
      rt.launch_kernel(s, 512, "producer", [] {}, {{&shared, 0, 512, true}});
      rt.stream_synchronize(s);
      comm.barrier();
    } else {
      comm.barrier();
      auto s = rt.create_stream(0);
      rt.launch_kernel(s, 512, "consumer", [] {}, {{&shared, 0, 512, false}});
      rt.stream_synchronize(s);
    }
  });
  EXPECT_TRUE(w.chk.report().clean()) << dump(w.chk.report());
}

TEST(CheckMpi, BarrierWithoutStreamSyncStillRaces) {
  CheckedWorld w(1, 2);
  vgpu::Buffer shared;
  w.job.run([&](simpi::Comm& comm) {
    auto& rt = w.runtime;
    if (comm.rank() == 0) {
      shared = rt.alloc_device(0, 512);
      auto s = rt.create_stream(0);
      rt.launch_kernel(s, 512, "producer", [] {}, {{&shared, 0, 512, true}});
      comm.barrier();  // BUG under test: the kernel was never synchronized
      rt.stream_synchronize(s);
    } else {
      comm.barrier();
      auto s = rt.create_stream(0);
      rt.launch_kernel(s, 512, "consumer", [] {}, {{&shared, 0, 512, false}});
      rt.stream_synchronize(s);
    }
  });
  const auto& rep = w.chk.report();
  ASSERT_EQ(rep.count(FindingKind::kReadWriteRace), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].first.find("producer"), std::string::npos);
  EXPECT_NE(rep.findings()[0].second.find("consumer"), std::string::npos);
}

TEST(CheckMpi, TruncatedMessageIsSizeMismatch) {
  CheckedWorld w(1, 2);
  EXPECT_THROW(w.job.run([&](simpi::Comm& comm) {
    std::vector<char> buf(256);
    if (comm.rank() == 0) {
      comm.send(simpi::Payload::of_values(buf.data(), buf.size()), 1, 3);
    } else {
      comm.recv(simpi::Payload::of_values(buf.data(), 128), 0, 3);  // too small
    }
  }),
               std::runtime_error);
  const auto& rep = w.chk.report();
  ASSERT_EQ(rep.count(FindingKind::kSizeMismatch), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].first.find("256B"), std::string::npos);
  EXPECT_NE(rep.findings()[0].second.find("128B"), std::string::npos);
}

TEST(CheckMpi, MismatchedTagsReportedAsPair) {
  CheckedWorld w(1, 2);
  w.job.run([&](simpi::Comm& comm) {
    std::vector<char> buf(64);
    if (comm.rank() == 0) {
      (void)comm.isend(simpi::Payload::of_values(buf.data(), buf.size()), 1, 5);
    } else {
      (void)comm.irecv(simpi::Payload::of_values(buf.data(), buf.size()), 0, 6);
    }
  });
  const auto& rep = w.chk.report();
  // One tag-mismatch finding pairing the two, not two separate leaks.
  ASSERT_EQ(rep.count(FindingKind::kTagMismatch), 1u) << dump(rep);
  EXPECT_EQ(rep.count(FindingKind::kRequestNeverWaited), 0u) << dump(rep);
  EXPECT_NE(rep.findings()[0].first.find("tag=5"), std::string::npos);
  EXPECT_NE(rep.findings()[0].second.find("tag=6"), std::string::npos);
}

TEST(CheckMpi, DeliveredButUnwaitedRequestLeaks) {
  CheckedWorld w(1, 2);
  w.job.run([&](simpi::Comm& comm) {
    std::vector<char> buf(64);
    if (comm.rank() == 0) {
      (void)comm.isend(simpi::Payload::of_values(buf.data(), buf.size()), 1, 2);  // never waited
    } else {
      comm.recv(simpi::Payload::of_values(buf.data(), buf.size()), 0, 2);
    }
  });
  const auto& rep = w.chk.report();
  ASSERT_EQ(rep.count(FindingKind::kRequestNeverWaited), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].second.find("never waited"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: full checked exchange() across every specialization method,
// including fault-driven demotion. The acceptance bar is zero findings.
// ---------------------------------------------------------------------------

float expected_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill_interior(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z) {
        for (std::int64_t y = 0; y < ld.size().y; ++y) {
          for (std::int64_t x = 0; x < ld.size().x; ++x) {
            v(x, y, z) = expected_value({o.x + x, o.y + y, o.z + z}, q);
          }
        }
      }
    }
  });
}

int verify_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq) {
  int failures = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z) {
        for (std::int64_t y = -r; y < sz.y + r; ++y) {
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            const bool interior =
                x >= 0 && x < sz.x && y >= 0 && y < sz.y && z >= 0 && z < sz.z;
            if (interior) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            failures += v(x, y, z) != expected_value(g, q);
          }
        }
      }
    }
  });
  return failures;
}

int histogram_count(const std::map<Method, int>& h, Method m) {
  auto it = h.find(m);
  return it == h.end() ? 0 : it->second;
}

struct ExchangeCase {
  const char* name;
  int nodes;
  int ranks_per_node;
  MethodFlags flags;
  bool aggregate = false;
  bool zero_copy = false;
  PackMode pack_mode = PackMode::kKernel;
};

void run_checked_exchange(const ExchangeCase& c, std::vector<Method> expect_methods) {
  SCOPED_TRACE(c.name);
  const Dim3 domain{48, 48, 48};
  Cluster cluster(topo::summit(), c.nodes, c.ranks_per_node);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(c.flags);
    dd.set_remote_aggregation(c.aggregate);
    dd.set_staged_zero_copy(c.zero_copy);
    dd.set_pack_mode(c.pack_mode);
    dd.realize();
    const auto hist = dd.local_method_histogram();
    for (Method m : expect_methods) {
      EXPECT_GT(histogram_count(hist, m), 0) << "method not exercised: " << to_string(m);
    }
    for (int it = 0; it < 3; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      if (it == 1) {
        dd.exchange({0});  // selective exchanges go through the same machinery
        dd.exchange({1});
      } else {
        dd.exchange();
      }
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 2), 0) << "iteration " << it;
    }
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

TEST(CheckExchange, KernelPeerColocatedSingleNodeClean) {
  run_checked_exchange({"single-node kAll", 1, 2, MethodFlags::kAll},
                       {Method::kKernel, Method::kPeer, Method::kColocated});
}

TEST(CheckExchange, CudaAwareRemoteClean) {
  run_checked_exchange({"cuda-aware remote", 2, 1, MethodFlags::kAllCudaAware},
                       {Method::kPeer, Method::kCudaAwareMpi});
}

TEST(CheckExchange, StagedRemoteClean) {
  run_checked_exchange({"staged remote", 2, 1, MethodFlags::kStaged | MethodFlags::kPeer |
                                                   MethodFlags::kKernel},
                       {Method::kPeer, Method::kStaged});
}

TEST(CheckExchange, StagedAggregatedClean) {
  ExchangeCase c{"staged aggregated", 2, 1,
                 MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel};
  c.aggregate = true;
  run_checked_exchange(c, {Method::kStaged});
}

TEST(CheckExchange, StagedZeroCopyClean) {
  ExchangeCase c{"staged zero-copy", 2, 1,
                 MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel};
  c.zero_copy = true;
  run_checked_exchange(c, {Method::kStaged});
}

TEST(CheckExchange, PeerMemcpy3DClean) {
  ExchangeCase c{"peer 3d", 1, 2, MethodFlags::kAll};
  c.pack_mode = PackMode::kMemcpy3D;
  run_checked_exchange(c, {Method::kPeer});
}

// The hardest case: all five methods in one job, then a mid-run fault storm
// (peer revocation, IPC invalidation, CUDA-awareness loss) demotes PEER,
// COLOCATED, and CUDA-aware transfers to STAGED. The checked exchange must
// stay bit-exact AND finding-free through the re-specialization.
TEST(CheckExchange, FaultDemotionStaysClean) {
  const sim::Time t_fault = sim::from_seconds(1.0);
  const Dim3 domain{48, 48, 48};
  fault::FaultPlan plan;
  plan.revoke_peer(t_fault, -1, -1).invalidate_ipc(t_fault).disable_cuda_aware(t_fault);
  fault::Injector inj(plan);

  Cluster cluster(topo::summit(), 2, 2);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.set_fault_injector(&inj);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(MethodFlags::kAllCudaAware | MethodFlags::kStaged);
    dd.realize();

    const auto before = dd.local_method_histogram();
    EXPECT_GT(histogram_count(before, Method::kPeer), 0);
    EXPECT_GT(histogram_count(before, Method::kColocated), 0);
    EXPECT_GT(histogram_count(before, Method::kCudaAwareMpi), 0);

    fill_interior(dd, 2);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(verify_halos(dd, domain, 2), 0);

    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    for (int it = 0; it < 2; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, domain, 2), 0) << "post-fault iteration " << it;
    }

    const auto after = dd.local_method_histogram();
    EXPECT_EQ(histogram_count(after, Method::kPeer), 0);
    EXPECT_EQ(histogram_count(after, Method::kColocated), 0);
    EXPECT_EQ(histogram_count(after, Method::kCudaAwareMpi), 0);
    EXPECT_GT(histogram_count(after, Method::kStaged),
              histogram_count(before, Method::kStaged));
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

// Detection through the full exchange stack: re-running the *same* exchange
// but suppressing one ordering edge must produce findings. The split-phase
// API lets the application race its own compute kernel against an in-flight
// exchange — the checker catches exactly that.
TEST(CheckExchange, ComputeOverlapOnBoundaryRaces) {
  const Dim3 domain{48, 48, 48};
  Cluster cluster(topo::summit(), 1, 2);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    fill_interior(dd, 1);
    ctx.comm.barrier();
    dd.exchange_start();
    // BUG under test: a "compute" kernel that touches the halo (not just
    // the interior) while the exchange is still in flight.
    dd.for_each_subdomain([&](LocalDomain& ld) {
      vgpu::AccessList acc;
      const std::size_t all = static_cast<std::size_t>(ld.storage().volume()) * sizeof(float);
      acc.push_back({&ld.data(0), 0, all, true});
      ctx.rt.launch_kernel(ld.compute_stream(), all, "eager compute", [] {}, acc);
    });
    dd.exchange_finish();
    dd.compute_synchronize();
    ctx.comm.barrier();
  });
  EXPECT_FALSE(chk.report().clean());
  // The eager compute kernel must appear in at least one race finding.
  bool named = false;
  for (const auto& f : chk.report().findings()) {
    named = named || f.first.find("eager compute") != std::string::npos ||
            f.second.find("eager compute") != std::string::npos;
  }
  EXPECT_TRUE(named) << dump(chk.report());
}

}  // namespace
