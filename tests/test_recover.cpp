#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "check/checker.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "recover/recover.h"
#include "simpi/mpi.h"
#include "topo/archetype.h"
#include "vgpu/runtime.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace vgpu = stencil::vgpu;
namespace simpi = stencil::simpi;
namespace fault = stencil::fault;
namespace check = stencil::check;
namespace recover = stencil::recover;

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::LocalDomain;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::RankCtx;

namespace {

// ---------------------------------------------------------------------------
// RetryPolicy: the backoff schedule is a pure function of (policy, attempt,
// salt) — truncated exponential plus bounded deterministic jitter.
// ---------------------------------------------------------------------------

TEST(RetryBackoff, TruncatedExponentialWithCap) {
  fault::RetryPolicy p;
  p.timeout = 100;
  p.max_retries = 8;
  p.backoff_base = 10;
  p.backoff_cap = 40;
  ASSERT_TRUE(p.enabled());
  EXPECT_EQ(p.backoff_delay(0, 7), 10);
  EXPECT_EQ(p.backoff_delay(1, 7), 20);
  EXPECT_EQ(p.backoff_delay(2, 7), 40);
  EXPECT_EQ(p.backoff_delay(3, 7), 40);  // capped
  EXPECT_EQ(p.backoff_delay(9, 7), 40);  // stays capped, no overflow
  // Budget = sum of the per-attempt delays (jitter is zero here).
  EXPECT_EQ(p.backoff_budget(4), 10 + 20 + 40 + 40);
}

TEST(RetryBackoff, UncappedDoublesAndBudgetSums) {
  fault::RetryPolicy p;
  p.timeout = 1;
  p.backoff_base = 5;
  EXPECT_EQ(p.backoff_delay(0, 0), 5);
  EXPECT_EQ(p.backoff_delay(3, 0), 40);
  EXPECT_EQ(p.backoff_budget(3), 5 + 10 + 20);
  EXPECT_EQ(fault::RetryPolicy{}.backoff_delay(5, 0), 0);  // disabled: no base
}

TEST(RetryBackoff, JitterIsDeterministicSaltedAndBounded) {
  fault::RetryPolicy p;
  p.timeout = 100;
  p.backoff_base = 100;
  p.backoff_cap = 800;
  p.jitter = 50;
  bool salt_matters = false;
  for (int k = 0; k < 6; ++k) {
    const sim::Duration raw = std::min<sim::Duration>(100 << k, 800);
    for (std::uint64_t salt : {0ull, 1ull, 0xdeadbeefull}) {
      const sim::Duration d = p.backoff_delay(k, salt);
      EXPECT_GE(d, raw);
      EXPECT_LE(d, raw + 50);
      EXPECT_EQ(d, p.backoff_delay(k, salt));  // same inputs, same schedule
    }
    salt_matters = salt_matters || p.backoff_delay(k, 1) != p.backoff_delay(k, 2);
  }
  EXPECT_TRUE(salt_matters);
  // The budget bounds every realized schedule (jitter at its max).
  sim::Duration worst = 0;
  for (int k = 0; k < 4; ++k) worst += p.backoff_delay(k, 0xdeadbeef);
  EXPECT_LE(worst, p.backoff_budget(4));
}

// ---------------------------------------------------------------------------
// Terminal-fault oracle.
// ---------------------------------------------------------------------------

TEST(TerminalFaults, InjectorOracle) {
  fault::FaultPlan plan;
  plan.fail_gpu(1000, 3).fail_node(2000, 1);
  fault::Injector inj(plan);
  EXPECT_EQ(inj.gpu_fail_time(3), 1000);
  EXPECT_EQ(inj.gpu_fail_time(0), fault::kForever);
  EXPECT_EQ(inj.node_fail_time(1), 2000);
  EXPECT_FALSE(inj.gpu_dead(3, 999));
  EXPECT_TRUE(inj.gpu_dead(3, 1000));
  EXPECT_TRUE(inj.node_dead(1, 2000));
  EXPECT_FALSE(inj.node_dead(0, 1 << 30));
  EXPECT_TRUE(inj.has_terminal_failures());
  EXPECT_EQ(inj.first_terminal_failure(), 1000);
  EXPECT_EQ(inj.detect_latency(), 20 * sim::kMicrosecond);
  EXPECT_FALSE(fault::Injector(fault::FaultPlan{}).has_terminal_failures());
}

// ---------------------------------------------------------------------------
// classify(): exception -> ladder rung.
// ---------------------------------------------------------------------------

TEST(Classify, MapsExceptionsOnAHealthyRank) {
  Cluster cluster(topo::pcie_box(1), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    simpi::Job& job = ctx.comm.job();
    const auto at = ctx.engine().now();
    using TE = simpi::TransportError;

    auto ev = recover::classify(TE(TE::Code::kPeerDead, 3, 42, "peer"), job, 0, at);
    EXPECT_EQ(ev.kind, recover::FailureKind::kPeerDeath);
    EXPECT_EQ(ev.peer, 3);
    EXPECT_EQ(ev.tag, 42);

    ev = recover::classify(TE(TE::Code::kRevoked, -1, -1, "revoked"), job, 0, at);
    EXPECT_EQ(ev.kind, recover::FailureKind::kPeerDeath);

    ev = recover::classify(TE(TE::Code::kTimeout, 1, 7, "slow"), job, 0, at);
    EXPECT_EQ(ev.kind, recover::FailureKind::kTransient);
    ev = recover::classify(TE(TE::Code::kRetriesExhausted, 1, 7, "gone"), job, 0, at);
    EXPECT_EQ(ev.kind, recover::FailureKind::kTransient);

    ev = recover::classify(vgpu::DeviceLost(2, "xid"), job, 0, at);
    EXPECT_EQ(ev.kind, recover::FailureKind::kLocalDeviceLoss);

    ev = recover::classify(
        vgpu::CapabilityError(vgpu::CapabilityError::Kind::kPeerAccessLost, "p2p"), job, 0, at);
    EXPECT_EQ(ev.kind, recover::FailureKind::kCapability);

    ev = recover::classify(std::runtime_error("unrelated"), job, 0, at);
    EXPECT_EQ(ev.kind, recover::FailureKind::kNone);
    EXPECT_STREQ(recover::to_string(ev.kind), "none");
  });
}

TEST(Classify, LocalDeathOverridesAnySymptom) {
  fault::FaultPlan plan;
  plan.fail_gpu(100 * sim::kMicrosecond, 0);
  fault::Injector inj(plan);
  Cluster cluster(topo::pcie_box(1), 1, 1);
  cluster.set_fault_injector(&inj);
  cluster.run([&](RankCtx& ctx) {
    ctx.engine().sleep_until(200 * sim::kMicrosecond);
    // Even a "peer died" transport error classifies as local loss once the
    // oracle says our own rank's device is gone.
    using TE = simpi::TransportError;
    const auto ev = recover::classify(TE(TE::Code::kPeerDead, 9, 1, "peer"), ctx.comm.job(),
                                      ctx.rank(), ctx.engine().now());
    EXPECT_EQ(ev.kind, recover::FailureKind::kLocalDeviceLoss);
    EXPECT_EQ(ev.peer, 0);
  });
}

// ---------------------------------------------------------------------------
// Dead-peer detection: the blocked wait surfaces kPeerDead at the detection
// bound (failure instant + detect latency), never earlier, never hangs.
// ---------------------------------------------------------------------------

TEST(PeerDeath, RecvFromDeadRankThrowsAtDetectionBound) {
  const sim::Time t_fail = 500 * sim::kMicrosecond;
  fault::FaultPlan plan;
  plan.fail_gpu(t_fail, 1);
  fault::Injector inj(plan);
  Cluster cluster(topo::pcie_box(2), 1, 2);
  cluster.set_fault_injector(&inj);
  cluster.run([&](RankCtx& ctx) {
    auto& rt = ctx.rt;
    if (ctx.rank() == 0) {
      vgpu::Buffer buf = rt.alloc_pinned_host(0, 256);
      auto req = ctx.comm.irecv(simpi::Payload::of(buf, 0, 256), 1, 5);
      try {
        ctx.comm.wait(req);
        FAIL() << "recv from a dead rank completed";
      } catch (const simpi::TransportError& e) {
        EXPECT_EQ(e.code(), simpi::TransportError::Code::kPeerDead);
        EXPECT_EQ(e.peer(), 1);
        EXPECT_EQ(ctx.engine().now(), t_fail + inj.detect_latency());
      }
    } else {
      ctx.engine().sleep_until(t_fail + sim::kMicrosecond);  // die quietly
    }
  });
}

// ---------------------------------------------------------------------------
// Checkpoint/restore round trip, and the buddy invariant (other node).
// ---------------------------------------------------------------------------

float coded(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 97 * g.y + 97 * 97 * g.z) + 1.0e6f * static_cast<float>(q);
}

void fill_coded(DistributedDomain& dd, std::size_t nq, float bias) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = coded({o.x + x, o.y + y, o.z + z}, q) + bias;
    }
  });
}

std::int64_t count_mismatches(DistributedDomain& dd, std::size_t nq, float bias) {
  std::int64_t bad = 0;
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            bad += v(x, y, z) != coded({o.x + x, o.y + y, o.z + z}, q) + bias;
    }
  });
  return bad;
}

TEST(Checkpoint, RoundTripRestoresBitExactState) {
  Cluster cluster(topo::pcie_box(2), 2, 2);
  std::int64_t bad = -1;
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {16, 16, 16});
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.realize();
    recover::RecoveryManager rm(ctx, dd, /*cadence=*/1);

    // Buddies must land on the other node (offset = ranks_per_node).
    fill_coded(dd, 2, 0.0f);
    ASSERT_TRUE(rm.maybe_checkpoint(4));
    EXPECT_EQ(rm.store().my_latest(), 4);
    const int buddy = rm.store().buddy_of(ctx.rank());
    EXPECT_NE(buddy, ctx.rank());
    EXPECT_NE(buddy / 2, ctx.rank() / 2);

    // Clobber, then rewind to the committed generation.
    fill_coded(dd, 2, 123.0f);
    rm.store().restore(4, {});
    if (ctx.rank() == 0) bad = count_mismatches(dd, 2, 0.0f);

    // Two alternating slots: a later checkpoint never evicts the newest.
    fill_coded(dd, 2, 7.0f);
    ASSERT_TRUE(rm.maybe_checkpoint(6));
    EXPECT_EQ(rm.store().my_latest(), 6);
    rm.store().restore(4, {});  // the older generation is still committed
    EXPECT_EQ(rm.stats().checkpoints, 2u);
    EXPECT_THROW(rm.store().restore(2, {}), std::runtime_error);  // evicted/never taken
  });
  EXPECT_EQ(bad, 0);
}

TEST(Checkpoint, CadenceGatesCheckpoints) {
  Cluster cluster(topo::pcie_box(2), 1, 2);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {12, 12, 12});
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.realize();
    recover::RecoveryManager every3(ctx, dd, 3);
    EXPECT_TRUE(every3.maybe_checkpoint(0));
    EXPECT_FALSE(every3.maybe_checkpoint(1));
    EXPECT_FALSE(every3.maybe_checkpoint(2));
    EXPECT_TRUE(every3.maybe_checkpoint(3));
    recover::RecoveryManager never(ctx, dd, 0);
    EXPECT_FALSE(never.maybe_checkpoint(0));
    EXPECT_EQ(never.store().my_latest(), -1);
  });
}

// ---------------------------------------------------------------------------
// The acceptance drill: a 2x2-GPU heat3d run where one GPU dies mid-run must
// complete via shrink + buddy restore, bit-exact against the failure-free
// golden run, with the happens-before checker clean across the epoch bump.
// ---------------------------------------------------------------------------

struct Heat3dResult {
  std::vector<float> field;  // assembled interior, x-major
  std::int64_t survivors = 0;
  std::int64_t casualties = 0;
  recover::RecoveryStats stats;
  bool checker_clean = false;
  std::string checker_summary;
};

Heat3dResult run_heat3d(std::int64_t edge, int steps, bool kill_gpu1, sim::Time t_fail,
                        std::int64_t cadence) {
  Heat3dResult out;
  out.field.assign(static_cast<std::size_t>(edge * edge * edge), -1.0f);

  fault::FaultPlan plan;
  if (kill_gpu1) plan.fail_gpu(t_fail, 1);
  fault::Injector inj(plan);
  Cluster cluster(topo::pcie_box(2), 2, 2);
  check::Checker checker(cluster.engine());
  cluster.set_checker(&checker);
  if (inj.active()) cluster.set_fault_injector(&inj);

  // Pace iterations so the fault lands mid-run regardless of exchange cost.
  const sim::Time slice = steps > 0 ? (2 * t_fail) / steps : 0;

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {edge, edge, edge});
    dd.set_radius(1);
    dd.set_neighborhood(Neighborhood::kFaces);
    const auto cur = dd.add_data<float>("T");
    const auto nxt = dd.add_data<float>("T_next");
    dd.realize();
    recover::RecoveryManager rm(ctx, dd, cadence);

    // Deterministic non-trivial initial condition.
    dd.for_each_subdomain([&](LocalDomain& ld) {
      auto v = ld.view<float>(cur);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = coded({o.x + x, o.y + y, o.z + z}, 0) * 1e-4f;
    });

    std::int64_t it = 0, trip = 0;
    while (it < steps) {
      try {
        ctx.engine().sleep_until(slice * trip);
        ++trip;
        rm.maybe_checkpoint(it);
        dd.exchange({cur});
        dd.for_each_subdomain([&](LocalDomain& ld) {
          dd.launch_compute(ld, "jacobi", 1000, [&ld] {
            auto t = ld.view<float>(0);
            auto tn = ld.view<float>(1);
            const auto s = ld.size();
            for (std::int64_t z = 0; z < s.z; ++z)
              for (std::int64_t y = 0; y < s.y; ++y)
                for (std::int64_t x = 0; x < s.x; ++x) {
                  const float lap = t(x - 1, y, z) + t(x + 1, y, z) + t(x, y - 1, z) +
                                    t(x, y + 1, z) + t(x, y, z - 1) + t(x, y, z + 1) -
                                    6.0f * t(x, y, z);
                  tn(x, y, z) = t(x, y, z) + 0.1f * lap;
                }
          });
        });
        dd.compute_synchronize();
        dd.for_each_subdomain([&](LocalDomain& ld) { ld.swap_data(cur, nxt); });
        ++it;
      } catch (const std::exception& e) {
        const auto ev = recover::classify(e, ctx.comm.job(), ctx.rank(), ctx.engine().now());
        if (ev.kind == recover::FailureKind::kNone) throw;
        const std::int64_t back = rm.recover(ev, it);
        if (back == recover::RecoveryManager::kRankGone) {
          ++out.casualties;
          return;
        }
        it = back;
      }
    }
    ++out.survivors;
    if (rm.stats().recoveries > out.stats.recoveries) out.stats = rm.stats();

    // Assemble this rank's interiors into the global field (DES actors run
    // one at a time, so plain writes are safe).
    dd.for_each_subdomain([&](LocalDomain& ld) {
      auto v = ld.view<float>(cur);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            out.field[static_cast<std::size_t>((o.z + z) * edge * edge + (o.y + y) * edge +
                                               o.x + x)] = v(x, y, z);
    });
  });
  out.checker_clean = checker.report().clean();
  out.checker_summary = checker.report().summary();
  for (const auto& f : checker.report().findings()) {
    out.checker_summary += "\n  " + f.first + ": " + f.second;
  }
  return out;
}

TEST(Acceptance, GpuFailMidRunShrinksAndMatchesGoldenBitExact) {
  constexpr std::int64_t kEdge = 24;
  constexpr int kSteps = 6;
  const sim::Time t_fail = 400 * sim::kMicrosecond;

  const Heat3dResult golden = run_heat3d(kEdge, kSteps, false, t_fail, 2);
  ASSERT_EQ(golden.survivors, 4);
  ASSERT_EQ(golden.casualties, 0);
  ASSERT_TRUE(golden.checker_clean);

  const Heat3dResult wounded = run_heat3d(kEdge, kSteps, true, t_fail, 2);
  EXPECT_EQ(wounded.casualties, 1);
  EXPECT_EQ(wounded.survivors, 3);
  EXPECT_GE(wounded.stats.recoveries, 1u);
  EXPECT_EQ(wounded.stats.ranks_retired, 1u);
  EXPECT_GT(wounded.stats.last_mttr, 0);
  EXPECT_TRUE(wounded.checker_clean)
      << "checker found races across the recovery epoch: " << wounded.checker_summary;

  // Every interior point was produced by a survivor...
  for (const float f : wounded.field) ASSERT_NE(f, -1.0f);
  // ...and the survivor-computed field is bit-identical to the golden run.
  ASSERT_EQ(wounded.field.size(), golden.field.size());
  std::size_t diffs = 0, first = 0;
  for (std::size_t i = 0; i < golden.field.size(); ++i) {
    if (wounded.field[i] != golden.field[i]) {
      if (diffs == 0) first = i;
      ++diffs;
    }
  }
  EXPECT_EQ(diffs, 0u) << "first diff at linear " << first << " = ("
                       << first % kEdge << "," << (first / kEdge) % kEdge << ","
                       << first / (kEdge * kEdge) << "): " << wounded.field[first]
                       << " vs golden " << golden.field[first];
}

// ---------------------------------------------------------------------------
// The kitchen sink: persistent compiled plans + happens-before checker + a
// transient fault storm + a terminal rank death, in one run.
// ---------------------------------------------------------------------------

TEST(Combined, PersistentPlansSurviveStormAndRankDeath) {
  constexpr std::int64_t kEdge = 16;
  // Late enough that realize() and its lossy setup handshakes are long done
  // (the drop storm stretches them via retries) before the rank dies.
  const sim::Time t_fail = 10 * sim::kMillisecond;

  fault::FaultPlan plan;
  fault::RetryPolicy rp;
  rp.timeout = 50 * sim::kMicrosecond;
  rp.max_retries = 6;
  rp.backoff_base = 5 * sim::kMicrosecond;
  rp.backoff_cap = 20 * sim::kMicrosecond;
  rp.jitter = sim::kMicrosecond;
  plan.set_retry_policy(rp);
  plan.set_seed(0xc0ffee);
  // A lossy NIC across the whole run plus one terminal GPU failure.
  plan.drop_messages(0, fault::kForever, -1, -1, 0.05);
  plan.fail_gpu(t_fail, 3);
  fault::Injector inj(plan);

  Cluster cluster(topo::pcie_box(2), 2, 2);
  check::Checker checker(cluster.engine());
  cluster.set_checker(&checker);
  cluster.set_fault_injector(&inj);

  std::int64_t halo_errors = 0;
  int survivors = 0, casualties = 0;
  std::uint64_t recoveries = 0;
  const int total = 8;
  const sim::Time slice = t_fail / 4;

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {kEdge, kEdge, kEdge});
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.set_persistent(true);
    dd.realize();
    recover::RecoveryManager rm(ctx, dd, 2);

    std::int64_t it = 0, trip = 0;
    while (it < total) {
      try {
        ctx.engine().sleep_until(slice * trip);
        ++trip;
        rm.maybe_checkpoint(it);
        fill_coded(dd, 1, 0.0f);
        dd.exchange();
        // Interior unchanged by the exchange; halos come from live peers.
        halo_errors += count_mismatches(dd, 1, 0.0f);
        ++it;
      } catch (const std::exception& e) {
        const auto ev = recover::classify(e, ctx.comm.job(), ctx.rank(), ctx.engine().now());
        if (ev.kind == recover::FailureKind::kNone) throw;
        const std::int64_t back = rm.recover(ev, it);
        if (back == recover::RecoveryManager::kRankGone) {
          ++casualties;
          return;
        }
        it = back;
      }
    }
    ++survivors;
    recoveries = std::max(recoveries, rm.stats().recoveries);
  });

  EXPECT_EQ(halo_errors, 0);
  EXPECT_EQ(casualties, 1);
  EXPECT_EQ(survivors, 3);
  EXPECT_GE(recoveries, 1u);
  EXPECT_TRUE(checker.report().clean()) << checker.report().summary();
}

}  // namespace
