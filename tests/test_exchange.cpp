#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/exchange.h"
#include "topo/archetype.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::LocalDomain;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::PlacementStrategy;
using stencil::RankCtx;

namespace {

// Encode (global coordinate, quantity) as an exactly-representable float.
float expected_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill_interior(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z) {
        for (std::int64_t y = 0; y < ld.size().y; ++y) {
          for (std::int64_t x = 0; x < ld.size().x; ++x) {
            v(x, y, z) = expected_value({o.x + x, o.y + y, o.z + z}, q);
          }
        }
      }
    }
  });
}

// Which transfer direction covers a halo cell: the per-dim signature.
Dim3 halo_signature(Dim3 c, Dim3 sz) {
  auto sig = [](std::int64_t v, std::int64_t s) { return v < 0 ? -1 : (v >= s ? 1 : 0); };
  return {sig(c.x, sz.x), sig(c.y, sz.y), sig(c.z, sz.z)};
}

bool in_neighborhood(Dim3 sig, Neighborhood n) {
  const int nz = static_cast<int>(std::abs(sig.x) + std::abs(sig.y) + std::abs(sig.z));
  if (nz == 0) return false;
  switch (n) {
    case Neighborhood::kFaces: return nz == 1;
    case Neighborhood::kFacesEdges: return nz <= 2;
    case Neighborhood::kFull: return true;
  }
  return false;
}

// After an exchange, every halo cell covered by the neighborhood must hold
// the periodically-wrapped source value. Returns failures found.
int verify_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq, Neighborhood nbhd) {
  int failures = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z) {
        for (std::int64_t y = -r; y < sz.y + r; ++y) {
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            const Dim3 sig = halo_signature({x, y, z}, sz);
            if (!in_neighborhood(sig, nbhd)) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            const float want = expected_value(g, q);
            if (v(x, y, z) != want && failures < 5) {
              ADD_FAILURE() << "subdomain " << ld.index().str() << " q" << q << " halo ["
                            << x << "," << y << "," << z << "] = " << v(x, y, z)
                            << ", want " << want << " (global " << g.str() << ")";
            }
            failures += v(x, y, z) != want;
          }
        }
      }
    }
  });
  return failures;
}

struct Config {
  int nodes;
  int ranks_per_node;
  Dim3 domain;
  int radius;
  MethodFlags flags;
  PlacementStrategy strategy;
  Neighborhood nbhd;
  std::string name;
};

void run_exchange_correctness(const Config& c, int iterations = 1) {
  Cluster cluster(stencil::topo::summit(), c.nodes, c.ranks_per_node);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, c.domain);
    dd.set_radius(c.radius);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(c.flags);
    dd.set_placement(c.strategy);
    dd.set_neighborhood(c.nbhd);
    dd.realize();
    for (int it = 0; it < iterations; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, c.domain, 2, c.nbhd), 0) << c.name << " iteration " << it;
    }
  });
}

}  // namespace

TEST(Exchange, SingleNodeSingleRankAllMethods) {
  run_exchange_correctness({1, 1, {24, 18, 12}, 1, MethodFlags::kAll,
                            PlacementStrategy::kNodeAware, Neighborhood::kFull, "1n/1r/all"});
}

TEST(Exchange, SingleNodeSixRanksAllMethods) {
  run_exchange_correctness({1, 6, {24, 18, 12}, 1, MethodFlags::kAll,
                            PlacementStrategy::kNodeAware, Neighborhood::kFull, "1n/6r/all"});
}

TEST(Exchange, StagedOnlyMatchesReference) {
  run_exchange_correctness({1, 2, {24, 18, 12}, 1, MethodFlags::kStaged,
                            PlacementStrategy::kTrivial, Neighborhood::kFull, "1n/2r/staged"});
}

TEST(Exchange, CudaAwareOnlyMatchesReference) {
  run_exchange_correctness({2, 3, {24, 18, 12}, 1, MethodFlags::kCudaAwareMpi,
                            PlacementStrategy::kTrivial, Neighborhood::kFull, "2n/3r/ca"});
}

TEST(Exchange, MultiNodeMixedMethods) {
  run_exchange_correctness({2, 2, {30, 24, 16}, 2, MethodFlags::kAll,
                            PlacementStrategy::kNodeAware, Neighborhood::kFull, "2n/2r/all/r2"});
}

TEST(Exchange, RepeatedExchangesStayCorrect) {
  run_exchange_correctness({1, 2, {20, 16, 12}, 1, MethodFlags::kAll,
                            PlacementStrategy::kNodeAware, Neighborhood::kFull, "repeat"},
                           /*iterations=*/3);
}

TEST(Exchange, SelfExchangeViaKernel) {
  // A domain that is one subdomain wide in z forces wrap-onto-self.
  run_exchange_correctness({1, 1, {30, 24, 5}, 1, MethodFlags::kAll,
                            PlacementStrategy::kTrivial, Neighborhood::kFull, "self/kernel"});
}

TEST(Exchange, SelfExchangeWithoutKernelFallsBack) {
  run_exchange_correctness({1, 1, {30, 24, 5}, 1,
                            MethodFlags::kStaged | MethodFlags::kPeer,
                            PlacementStrategy::kTrivial, Neighborhood::kFull, "self/peer"});
  run_exchange_correctness({1, 1, {30, 24, 5}, 1, MethodFlags::kStaged,
                            PlacementStrategy::kTrivial, Neighborhood::kFull, "self/staged"});
}

namespace {

void run_aggregated_correctness(int nodes, int rpn, MethodFlags flags) {
  Cluster cluster(stencil::topo::summit(), nodes, rpn);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {23, 17, 11});
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(flags);
    dd.set_remote_aggregation(true);
    dd.realize();
    for (int it = 0; it < 2; ++it) {
      fill_interior(dd, 2);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      EXPECT_EQ(verify_halos(dd, dd.domain(), 2, Neighborhood::kFull), 0) << "iteration " << it;
    }
  });
}

}  // namespace

TEST(ExchangeAggregated, StagedOnlySingleNode) {
  run_aggregated_correctness(1, 2, MethodFlags::kStaged);
}

TEST(ExchangeAggregated, StagedOnlyMultiNode) {
  run_aggregated_correctness(2, 6, MethodFlags::kStaged);
}

TEST(ExchangeAggregated, MixedMethodsMultiNode) {
  run_aggregated_correctness(2, 3, MethodFlags::kAll);
}

TEST(ExchangeAggregated, FewerMessagesAtScale) {
  // Aggregation must reduce per-exchange message count; in the
  // latency-bound strong-scaling regime that shortens the exchange.
  auto time_with = [](bool aggregated) {
    Cluster cluster(stencil::topo::summit(), 4, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    std::vector<double> t(24, 0.0);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {220, 220, 220});  // small: latency matters
      dd.set_radius(1);
      dd.add_data<float>("q");
      dd.set_methods(MethodFlags::kStaged);
      dd.set_remote_aggregation(aggregated);
      dd.realize();
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      ctx.comm.barrier();
      t[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
    });
    return *std::max_element(t.begin(), t.end());
  };
  EXPECT_LT(time_with(true), time_with(false));
}

// Capability specialization (§III-C): enabling methods one at a time must
// promote exactly the transfer classes each tier covers, in the paper's
// order, with everything else still falling through to the tier below.
TEST(Exchange, SpecializationFallsThroughDisabledMethods) {
  // 240x16x16 over 2 nodes x 6 GPUs partitions as a 12x1x1 chain, so the
  // plan has self-exchanges (wrap onto self in y/z), same-rank pairs (with
  // 2 ranks per node), same-node cross-rank pairs, and cross-node pairs.
  stencil::HierarchicalPartition hp({240, 16, 16}, 2, 6);
  stencil::Placement p(hp, stencil::topo::summit(), 1, 4, Neighborhood::kFull,
                       PlacementStrategy::kTrivial);
  const int rpn = 2;  // 3 GPUs per rank: same-rank distinct-GPU transfers exist
  auto hist = [&](MethodFlags f) {
    return stencil::ExchangePlan::full(p, rpn, f, Neighborhood::kFull).method_histogram();
  };
  auto count = [](const std::map<stencil::Method, int>& h, stencil::Method m) {
    auto it = h.find(m);
    return it == h.end() ? 0 : it->second;
  };
  using stencil::Method;

  // STAGED only: the universal fallback carries every transfer.
  const auto h_staged = hist(MethodFlags::kStaged);
  ASSERT_EQ(h_staged.size(), 1u);
  const int total = count(h_staged, Method::kStaged);
  EXPECT_GT(total, 0);

  // +remote: every transfer (even self) promotes to CUDA-aware MPI when
  // nothing closer to the silicon is allowed.
  const auto h_remote = hist(MethodFlags::kStaged | MethodFlags::kCudaAwareMpi);
  EXPECT_EQ(count(h_remote, Method::kCudaAwareMpi), total);
  EXPECT_EQ(count(h_remote, Method::kStaged), 0);

  // +colo: same-node cross-rank pairs peel off onto COLOCATED.
  const auto h_colo =
      hist(MethodFlags::kStaged | MethodFlags::kCudaAwareMpi | MethodFlags::kColocated);
  EXPECT_GT(count(h_colo, Method::kColocated), 0);
  EXPECT_GT(count(h_colo, Method::kCudaAwareMpi), 0);  // cross-node remainder
  EXPECT_EQ(count(h_colo, Method::kPeer), 0);
  EXPECT_EQ(count(h_colo, Method::kKernel), 0);

  // +peer: same-rank pairs (self included, with KERNEL still off) take
  // PEER_MEMCPY; colocated and remote counts cannot grow.
  const auto h_peer = hist(MethodFlags::kStaged | MethodFlags::kCudaAwareMpi |
                           MethodFlags::kColocated | MethodFlags::kPeer);
  EXPECT_GT(count(h_peer, Method::kPeer), 0);
  EXPECT_EQ(count(h_peer, Method::kColocated), count(h_colo, Method::kColocated));
  EXPECT_LT(count(h_peer, Method::kCudaAwareMpi), count(h_colo, Method::kCudaAwareMpi));

  // +kernel: only self-exchanges move again, from PEER to KERNEL.
  const auto h_all = hist(MethodFlags::kAllCudaAware | MethodFlags::kStaged);
  EXPECT_GT(count(h_all, Method::kKernel), 0);
  EXPECT_EQ(count(h_all, Method::kKernel) + count(h_all, Method::kPeer),
            count(h_peer, Method::kPeer));
  EXPECT_EQ(count(h_all, Method::kColocated), count(h_peer, Method::kColocated));
  EXPECT_EQ(count(h_all, Method::kCudaAwareMpi), count(h_peer, Method::kCudaAwareMpi));

  // Every tier change conserves the transfer count.
  for (const auto& h : {h_remote, h_colo, h_peer, h_all}) {
    int sum = 0;
    for (const auto& [m, n] : h) sum += n;
    EXPECT_EQ(sum, total);
  }
}

// Property sweep: correctness must hold for every method set x layout x
// neighborhood x placement, on an awkward non-divisible domain.
class ExchangeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ExchangeProperty, HalosMatchReference) {
  const auto [nodes, rpn, flag_sel, strat_sel, nbhd_sel] = GetParam();
  static const MethodFlags kFlagSets[] = {
      MethodFlags::kStaged,
      MethodFlags::kStaged | MethodFlags::kColocated,
      MethodFlags::kStaged | MethodFlags::kColocated | MethodFlags::kPeer,
      MethodFlags::kAll,
      MethodFlags::kAllCudaAware,
  };
  static const PlacementStrategy kStrats[] = {PlacementStrategy::kNodeAware,
                                              PlacementStrategy::kTrivial};
  static const Neighborhood kNbhds[] = {Neighborhood::kFaces, Neighborhood::kFacesEdges,
                                        Neighborhood::kFull};
  Config c{nodes,
           rpn,
           {23, 17, 11},
           1,
           kFlagSets[flag_sel],
           kStrats[strat_sel],
           kNbhds[nbhd_sel],
           "prop"};
  run_exchange_correctness(c);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExchangeProperty,
    ::testing::Combine(::testing::Values(1, 2),       // nodes
                       ::testing::Values(1, 2, 6),    // ranks per node
                       ::testing::Range(0, 5),        // method set
                       ::testing::Range(0, 2),        // placement
                       ::testing::Values(0, 2)));     // neighborhood
