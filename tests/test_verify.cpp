#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/report.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/tagspace.h"
#include "fault/fault.h"
#include "plan/plan.h"
#include "topo/archetype.h"
#include "verify/verify.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace check = stencil::check;
namespace plan = stencil::plan;
namespace fault = stencil::fault;
namespace verify = stencil::verify;
namespace tagspace = stencil::tagspace;

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::Method;
using stencil::MethodFlags;
using stencil::RankCtx;
using verify::ExchangeModel;
using verify::FindingKind;
using verify::Op;
using verify::OpKind;
using verify::RankProgram;

namespace {

std::string dump(const verify::Report& rep) {
  std::ostringstream os;
  rep.write(os);
  return os.str();
}

std::string dump(const check::CheckReport& rep) {
  std::ostringstream os;
  rep.write(os);
  return os.str();
}

// -- fixture builders -------------------------------------------------------

Op msg(OpKind kind, int rank, int peer, int tag, std::uint64_t bytes) {
  Op o;
  o.kind = kind;
  o.rank = rank;
  o.peer = peer;
  o.tag = tag;
  o.bytes = bytes;
  return o;
}

verify::Access flat(std::uint64_t buffer, std::uint64_t offset,
                    std::uint64_t bytes, bool write) {
  verify::Access a;
  a.buffer = buffer;
  a.write = write;
  a.offset = offset;
  a.bytes = bytes;
  return a;
}

ExchangeModel two_ranks() {
  ExchangeModel m;
  m.world_size = 2;
  m.ranks.resize(2);
  m.ranks[0].rank = 0;
  m.ranks[1].rank = 1;
  for (const tagspace::Range& tr : tagspace::reserved_ranges()) {
    m.reserved.push_back({tr.lo, tr.hi, tr.name});
  }
  m.name = "fixture";
  return m;
}

// A clean unidirectional message rank 0 -> rank 1 on `tag`.
void add_clean_message(ExchangeModel& m, int tag, std::uint64_t bytes) {
  m.ranks[1].ops.push_back(msg(OpKind::kPostRecv, 1, 0, tag, bytes));
  m.ranks[0].ops.push_back(msg(OpKind::kStartSend, 0, 1, tag, bytes));
  m.ranks[1].ops.push_back(msg(OpKind::kWaitRecv, 1, 0, tag, bytes));
  m.ranks[0].ops.push_back(msg(OpKind::kWaitSend, 0, 1, tag, bytes));
}

}  // namespace

// ---------------------------------------------------------------------------
// Seeded-defect fixtures: each hand-built model carries exactly one protocol
// bug; the verifier must name it with rank- and tag-precise diagnostics.
// ---------------------------------------------------------------------------

TEST(VerifySeeded, CleanFixtureHasNoFindings) {
  ExchangeModel m = two_ranks();
  add_clean_message(m, 7, 256);
  const verify::Report rep = verify::verify(m);
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(VerifySeeded, MismatchedTagNamesBothTags) {
  // Sender uses tag 41, receiver posted tag 42: same endpoints, same bytes.
  ExchangeModel m = two_ranks();
  m.ranks[1].ops.push_back(msg(OpKind::kPostRecv, 1, 0, 42, 512));
  m.ranks[0].ops.push_back(msg(OpKind::kStartSend, 0, 1, 41, 512));
  const verify::Report rep = verify::verify(m);
  ASSERT_TRUE(rep.has(FindingKind::kTagMismatch)) << dump(rep);
  const auto& fs = rep.findings();
  bool named = false;
  for (const auto& f : fs) {
    if (f.kind != FindingKind::kTagMismatch) continue;
    named = f.detail.find("41") != std::string::npos &&
            f.detail.find("42") != std::string::npos;
  }
  EXPECT_TRUE(named) << dump(rep);
}

TEST(VerifySeeded, OrphanRecvIsAnchoredAtPostingRank) {
  ExchangeModel m = two_ranks();
  add_clean_message(m, 3, 64);
  m.ranks[1].ops.push_back(msg(OpKind::kPostRecv, 1, 0, 99, 64));
  const verify::Report rep = verify::verify(m);
  ASSERT_EQ(rep.count(FindingKind::kOrphanRecv), 1u) << dump(rep);
  const verify::Finding& f = rep.findings().front();
  EXPECT_EQ(f.kind, FindingKind::kOrphanRecv);
  EXPECT_EQ(f.rank, 1);
  EXPECT_EQ(f.peer, 0);
  EXPECT_EQ(f.tag, 99);
  ASSERT_EQ(f.ops.size(), 1u);
  EXPECT_NE(f.ops.front().find("tag 99"), std::string::npos);
}

TEST(VerifySeeded, SizeMismatchOnMatchedChannel) {
  ExchangeModel m = two_ranks();
  m.ranks[1].ops.push_back(msg(OpKind::kPostRecv, 1, 0, 5, 128));
  m.ranks[0].ops.push_back(msg(OpKind::kStartSend, 0, 1, 5, 256));
  const verify::Report rep = verify::verify(m);
  EXPECT_TRUE(rep.has(FindingKind::kSizeMismatch)) << dump(rep);
}

TEST(VerifySeeded, HeadToHeadRendezvousCycleNamesEveryOp) {
  // Both ranks wait for their receive to land before starting their own
  // send: the classic rendezvous deadlock a persistent-request schedule can
  // freeze into. All channels are matched, so only the cycle fires.
  ExchangeModel m = two_ranks();
  m.ranks[0].ops.push_back(msg(OpKind::kPostRecv, 0, 1, 1, 32));
  m.ranks[1].ops.push_back(msg(OpKind::kPostRecv, 1, 0, 2, 32));
  m.ranks[0].ops.push_back(msg(OpKind::kWaitRecv, 0, 1, 1, 32));
  m.ranks[1].ops.push_back(msg(OpKind::kWaitRecv, 1, 0, 2, 32));
  m.ranks[0].ops.push_back(msg(OpKind::kStartSend, 0, 1, 2, 32));
  m.ranks[1].ops.push_back(msg(OpKind::kStartSend, 1, 0, 1, 32));
  m.ranks[0].ops.push_back(msg(OpKind::kWaitSend, 0, 1, 2, 32));
  m.ranks[1].ops.push_back(msg(OpKind::kWaitSend, 1, 0, 1, 32));
  const verify::Report rep = verify::verify(m);
  ASSERT_TRUE(rep.has(FindingKind::kWaitCycle)) << dump(rep);
  for (const auto& f : rep.findings()) {
    if (f.kind != FindingKind::kWaitCycle) continue;
    // The counterexample walks both waits and both sends.
    EXPECT_GE(f.ops.size(), 4u) << dump(rep);
    std::size_t waits = 0, sends = 0;
    for (const std::string& op : f.ops) {
      waits += op.find("wait-recv") != std::string::npos;
      sends += op.find("start-send") != std::string::npos;
    }
    EXPECT_EQ(waits, 2u) << dump(rep);
    EXPECT_EQ(sends, 2u) << dump(rep);
  }
}

TEST(VerifySeeded, TokenWaitWithoutSignalIsUnsatisfied) {
  ExchangeModel m = two_ranks();
  Op w;
  w.kind = OpKind::kTokenWait;
  w.rank = 0;
  w.peer = 1;
  w.token = "colo:17:data";
  m.ranks[0].ops.push_back(std::move(w));
  const verify::Report rep = verify::verify(m);
  ASSERT_TRUE(rep.has(FindingKind::kUnsatisfiedWait)) << dump(rep);
  EXPECT_NE(rep.findings().front().detail.find("colo:17:data"),
            std::string::npos);
}

TEST(VerifySeeded, CheckpointTagCollisionIsFlagged) {
  // A halo message whose tag strays into recover's reserved checkpoint span.
  ExchangeModel m = two_ranks();
  const int bad = tagspace::checkpoint_tag(3, 1);
  add_clean_message(m, bad, 1024);
  const verify::Report rep = verify::verify(m);
  ASSERT_TRUE(rep.has(FindingKind::kTagCollision)) << dump(rep);
  bool named = false;
  for (const auto& f : rep.findings()) {
    if (f.kind != FindingKind::kTagCollision) continue;
    EXPECT_EQ(f.tag, bad);
    named |= f.detail.find("checkpoint") != std::string::npos;
  }
  EXPECT_TRUE(named) << dump(rep);
}

TEST(VerifySeeded, ClaimedAggregationTagIsNotACollision) {
  // Aggregation headers legitimately occupy their reserved span — but only
  // when every endpoint claims the range by name.
  ExchangeModel m = two_ranks();
  const int agg = tagspace::agg_tag(0);
  add_clean_message(m, agg, 4096);
  verify::Report rep = verify::verify(m);
  EXPECT_TRUE(rep.has(FindingKind::kTagCollision)) << dump(rep);

  for (RankProgram& rp : m.ranks) {
    for (Op& o : rp.ops) o.claims = tagspace::kAggRangeName;
  }
  rep = verify::verify(m);
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(VerifySeeded, UnsynchronizedPackRecvOverlapIsAHazard) {
  // Rank 1's pack kernel reads the very buffer its posted receive lands in,
  // with no plan-ordered sync between them.
  ExchangeModel m = two_ranks();
  add_clean_message(m, 11, 4096);  // recv landing on rank 1
  RankProgram& r1 = m.ranks[1];
  for (Op& o : r1.ops) {
    if (o.kind == OpKind::kWaitRecv) o.accesses.push_back(flat(77, 0, 4096, true));
  }
  Op pack;
  pack.kind = OpKind::kStream;
  pack.rank = 1;
  pack.stream = 9;
  pack.tag = 11;
  pack.accesses.push_back(flat(77, 1024, 512, false));
  pack.what = "pack reading buffer 77";
  r1.ops.push_back(std::move(pack));

  verify::Report rep = verify::verify(m);
  ASSERT_EQ(rep.count(FindingKind::kBufferHazard), 1u) << dump(rep);
  const verify::Finding& f = rep.findings().front();
  EXPECT_EQ(f.rank, 1);
  EXPECT_EQ(f.ops.size(), 2u);

  // The same pair with a plan-ordered edge between them verifies clean.
  std::size_t wait_idx = 0;
  for (std::size_t i = 0; i < r1.ops.size(); ++i) {
    if (r1.ops[i].kind == OpKind::kWaitRecv) wait_idx = i;
  }
  r1.order.emplace_back(wait_idx, r1.ops.size() - 1);  // recv-done -> pack
  rep = verify::verify(m);
  EXPECT_TRUE(rep.clean()) << dump(rep);
}

TEST(VerifyReport, JsonIsDeterministicAndSchemaTagged) {
  ExchangeModel m = two_ranks();
  m.ranks[1].ops.push_back(msg(OpKind::kPostRecv, 1, 0, 99, 64));
  const verify::Report rep = verify::verify(m);
  std::ostringstream a, b;
  rep.write_json(a, "fixture");
  rep.write_json(b, "fixture");
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\":\"verify-v1\""), std::string::npos);
  EXPECT_NE(a.str().find("\"plan\":\"fixture\""), std::string::npos);
  EXPECT_NE(a.str().find("orphan-recv"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tag-space hygiene of the layout itself.
// ---------------------------------------------------------------------------

TEST(TagSpace, ReservedRangesArePairwiseDisjointAndNegative) {
  const auto rs = tagspace::reserved_ranges();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_LE(rs[i].lo, rs[i].hi);
    EXPECT_LT(rs[i].hi, 0) << rs[i].name;
    for (std::size_t j = i + 1; j < rs.size(); ++j) {
      EXPECT_TRUE(rs[i].hi < rs[j].lo || rs[j].hi < rs[i].lo)
          << rs[i].name << " overlaps " << rs[j].name;
    }
  }
}

TEST(TagSpace, DerivationsStayInsideTheirRanges) {
  EXPECT_EQ(tagspace::data_tag(0, 0), 0);
  EXPECT_EQ(tagspace::data_tag(2, 3), 2 * 26 + 3);
  EXPECT_EQ(tagspace::setup_tag(0), -10);
  EXPECT_EQ(tagspace::agg_tag(0), -10'000'000);
  EXPECT_EQ(tagspace::checkpoint_tag(0, 0), -40'000'000);
  EXPECT_EQ(tagspace::restore_tag(0, 0), -50'000'000);

  const auto rs = tagspace::reserved_ranges();
  auto in = [&](const char* name, int tag) {
    for (const auto& r : rs) {
      if (std::string(r.name) == name) return tag >= r.lo && tag <= r.hi;
    }
    return false;
  };
  EXPECT_TRUE(in("colocated-setup", tagspace::setup_tag(tagspace::kMaxDataTag)));
  EXPECT_TRUE(in("aggregate-header", tagspace::agg_tag(tagspace::kMaxRanks - 1)));
  EXPECT_TRUE(in("checkpoint", tagspace::checkpoint_tag(156'249, 63)));
  EXPECT_TRUE(in("restore", tagspace::restore_tag(156'249, 63)));
}

TEST(TagSpace, TenantWindowsTileDisjointAndDeriveInside) {
  for (int t = 0; t < tagspace::kMaxTenants; ++t) {
    const tagspace::Range w = tagspace::tenant_data_range(t);
    EXPECT_EQ(w.lo, t * tagspace::kTenantDataSpan);
    EXPECT_EQ(w.hi - w.lo + 1, tagspace::kTenantDataSpan);
    if (t > 0) {
      EXPECT_EQ(w.lo, tagspace::tenant_data_range(t - 1).hi + 1);  // no gap, no overlap
    }
  }
  // Per-tenant derivation lands inside the owner's window...
  const int tag = tagspace::data_tag(7, 3, 2);
  const tagspace::Range w2 = tagspace::tenant_data_range(2);
  EXPECT_GE(tag, w2.lo);
  EXPECT_LE(tag, w2.hi);
  EXPECT_EQ(tag, 2 * tagspace::kTenantDataSpan + 7 * 26 + 3);
  // ...and throws at the window edge for tenants > 0 instead of bleeding
  // into the neighbour (tenant 0 keeps the legacy full-span bound).
  const std::int64_t over = (tagspace::kTenantDataSpan + 25) / 26;
  EXPECT_THROW(tagspace::data_tag(over, 25, 1), std::overflow_error);
  EXPECT_NO_THROW(tagspace::data_tag(over, 25, 0));
  EXPECT_THROW(tagspace::tenant_data_range(tagspace::kMaxTenants), std::overflow_error);
  EXPECT_THROW(tagspace::data_tag(0, 0, -1), std::overflow_error);
}

TEST(TagSpace, CollectiveRangeIsReservedAndHoldsSimpiTags) {
  // PR 7's allgather tags (-1001/-1002) lived inside the colocated-setup
  // span; collectives now derive from their own reserved window.
  bool found = false;
  for (const auto& r : tagspace::reserved_ranges()) {
    if (std::string(r.name) != tagspace::kCollectiveRangeName) continue;
    found = true;
    EXPECT_GE(tagspace::collective_tag(0), r.lo);
    EXPECT_LE(tagspace::collective_tag(0), r.hi);
    EXPECT_GE(tagspace::collective_tag(tagspace::kCollectiveSpan - 1), r.lo);
    EXPECT_LE(tagspace::collective_tag(tagspace::kCollectiveSpan - 1), r.hi);
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(tagspace::collective_tag(tagspace::kCollectiveSpan), std::overflow_error);
  EXPECT_THROW(tagspace::collective_tag(-1), std::overflow_error);
}

// ---------------------------------------------------------------------------
// Cross-tenant isolation: per-model window enforcement plus the whole-machine
// disjointness pass the scheduler runs after every wave.
// ---------------------------------------------------------------------------

TEST(VerifyTenant, DataTagEscapingTheWindowIsFlagged) {
  ExchangeModel m = two_ranks();
  m.tenant_scoped = true;
  m.tenant = 1;
  const tagspace::Range w = tagspace::tenant_data_range(1);
  m.tenant_window = {w.lo, w.hi, "tenant-data"};
  add_clean_message(m, w.lo + 4, 256);  // inside: fine
  add_clean_message(m, 4, 256);         // tenant 0's window: escape
  const verify::Report rep = verify::verify(m);
  ASSERT_EQ(rep.count(), 1u) << dump(rep);
  EXPECT_EQ(rep.findings()[0].kind, FindingKind::kTagCollision);
  EXPECT_NE(rep.findings()[0].detail.find("escapes tenant 1"), std::string::npos);
}

TEST(VerifyTenant, CrossTenantWindowOverlapIsFlagged) {
  ExchangeModel a = two_ranks();
  a.name = "jobA";
  a.tenant_scoped = true;
  a.tenant = 0;
  a.tenant_window = {0, 599'999, "tenant-data"};
  ExchangeModel b = two_ranks();
  b.name = "jobB";
  b.tenant_scoped = true;
  b.tenant = 1;
  b.tenant_window = {599'000, 1'199'999, "tenant-data"};  // leaks into tenant 0
  verify::Report rep;
  verify::check_cross_tenant({&a, &b}, rep);
  ASSERT_EQ(rep.count(), 1u) << dump(rep);
  EXPECT_NE(rep.findings()[0].detail.find("overlaps tenant 1"), std::string::npos);
}

TEST(VerifyTenant, SharedWorldChannelAcrossModelsIsFlagged) {
  // Two tenants whose slices wrongly share world rank 3 and whose programs
  // both use the same (src, dst, tag) world channel: matching between them
  // would be order-dependent on a real MPI.
  ExchangeModel a = two_ranks();
  a.name = "jobA";
  a.world_rank_of = {2, 3};
  add_clean_message(a, 17, 64);
  ExchangeModel b = two_ranks();
  b.name = "jobB";
  b.world_rank_of = {2, 3};
  add_clean_message(b, 17, 64);
  verify::Report rep;
  verify::check_cross_tenant({&a, &b}, rep);
  ASSERT_EQ(rep.count(), 1u) << dump(rep);
  EXPECT_EQ(rep.findings()[0].kind, FindingKind::kTagCollision);
  EXPECT_NE(rep.findings()[0].detail.find("used by both tenant model"), std::string::npos);
  // Disjoint world slices with identical local programs are clean.
  b.world_rank_of = {4, 5};
  verify::Report clean;
  verify::check_cross_tenant({&a, &b}, clean);
  EXPECT_EQ(clean.count(), 0u) << dump(clean);
}

TEST(TagSpace, ExhaustionThrowsInsteadOfAliasing) {
  // Before tagspace.h, each of these silently bled into the next span.
  EXPECT_THROW(tagspace::data_tag(385'000, 0), std::overflow_error);
  EXPECT_THROW(tagspace::data_tag(-1, 0), std::overflow_error);
  EXPECT_THROW(tagspace::data_tag(0, 26), std::overflow_error);
  EXPECT_THROW(tagspace::setup_tag(-1), std::overflow_error);
  EXPECT_THROW(tagspace::setup_tag(tagspace::kMaxDataTag + 1), std::overflow_error);
  EXPECT_THROW(tagspace::agg_tag(-1), std::overflow_error);
  EXPECT_THROW(tagspace::agg_tag(tagspace::kMaxRanks), std::overflow_error);
  EXPECT_THROW(tagspace::checkpoint_tag(156'250, 0), std::overflow_error);
  EXPECT_THROW(tagspace::checkpoint_tag(0, 64), std::overflow_error);
  EXPECT_THROW(tagspace::restore_tag(156'250, 0), std::overflow_error);
}

// ---------------------------------------------------------------------------
// Plan-cache admission: the hook turns a dirty report into a rejection.
// ---------------------------------------------------------------------------

TEST(PlanAdmission, CleanReportAdmitsAndCountsVerification) {
  plan::PlanCache cache;
  cache.set_admission([](const plan::CompiledPlan&) { return std::string(); });
  EXPECT_TRUE(cache.has_admission());
  plan::CompiledPlan& p = cache.emplace(plan::PlanKey{});
  EXPECT_NO_THROW(cache.admit(p));
  EXPECT_EQ(cache.stats().verifications, 1u);
  EXPECT_EQ(cache.stats().rejections, 0u);
}

TEST(PlanAdmission, FindingsRejectWithReportAttached) {
  plan::PlanCache cache;
  cache.set_admission(
      [](const plan::CompiledPlan&) { return std::string("[orphan-recv] rank 1 tag 99"); });
  plan::PlanKey key;
  key.quantities = {0};
  plan::CompiledPlan& p = cache.emplace(key);
  try {
    cache.admit(p);
    FAIL() << "admit did not throw";
  } catch (const plan::AdmissionError& e) {
    EXPECT_NE(std::string(e.what()).find("plan admission rejected"),
              std::string::npos);
    EXPECT_NE(e.report().find("orphan-recv"), std::string::npos);
  }
  EXPECT_EQ(cache.stats().verifications, 1u);
  EXPECT_EQ(cache.stats().rejections, 1u);
}

TEST(PlanAdmission, NoHookIsANoOp) {
  plan::PlanCache cache;
  EXPECT_FALSE(cache.has_admission());
  plan::CompiledPlan& p = cache.emplace(plan::PlanKey{});
  EXPECT_NO_THROW(cache.admit(p));
  EXPECT_EQ(cache.stats().verifications, 0u);
}

// ---------------------------------------------------------------------------
// Production plans: every method's compiled plan must verify clean, at
// admission (fail-fast inside acquire_plan) and under explicit re-checks.
// ---------------------------------------------------------------------------

namespace {

struct VerifyCase {
  const char* name;
  int nodes;
  int ranks_per_node;
  MethodFlags flags;
  bool aggregate = false;
};

void run_verified_exchange(const VerifyCase& c) {
  SCOPED_TRACE(c.name);
  const Dim3 domain{48, 48, 48};
  Cluster cluster(topo::summit(), c.nodes, c.ranks_per_node);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<double>("b");
    dd.set_methods(c.flags);
    dd.set_remote_aggregation(c.aggregate);
    dd.set_persistent(true);
    ASSERT_TRUE(dd.verify_plans());  // admission is on by default
    dd.realize();
    dd.exchange();
    dd.exchange({0});  // selective subsets compile (and admit) their own plans
    dd.exchange();

    // Admission ran once per compile and rejected nothing.
    EXPECT_EQ(dd.plan_stats().verifications, dd.plan_stats().compiles);
    EXPECT_EQ(dd.plan_stats().rejections, 0u);
    // Explicit re-verification of every cached plan is also clean.
    for (const auto& p : dd.plan_cache().entries()) {
      const verify::Report rep = dd.verify_plan(*p);
      EXPECT_TRUE(rep.clean()) << "plan { " << p->key.str() << " }\n" << dump(rep);
    }
    ctx.comm.barrier();
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

}  // namespace

TEST(VerifyPlans, SingleNodeKernelPeerColocatedClean) {
  run_verified_exchange({"single-node kAll", 1, 2, MethodFlags::kAll});
}

TEST(VerifyPlans, CudaAwareRemoteClean) {
  run_verified_exchange({"cuda-aware remote", 2, 1, MethodFlags::kAllCudaAware});
}

TEST(VerifyPlans, StagedRemoteClean) {
  run_verified_exchange(
      {"staged remote", 2, 1, MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel});
}

TEST(VerifyPlans, StagedAggregatedClean) {
  run_verified_exchange(
      {"staged aggregated", 2, 1,
       MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel, true});
}

TEST(VerifyPlans, AllMethodsTwoByTwoClean) {
  run_verified_exchange({"all methods 2x2", 2, 2, MethodFlags::kAllCudaAware | MethodFlags::kStaged});
}

// After a fault storm demotes transfers, migrated plans are re-admitted
// (dirty rebuilds only) and still verify clean.
TEST(VerifyPlans, PostDemotionMigratedPlansReverifyClean) {
  const sim::Time t_fault = sim::from_seconds(1.0);
  const Dim3 domain{48, 48, 48};
  fault::FaultPlan fplan;
  fplan.revoke_peer(t_fault, -1, -1).invalidate_ipc(t_fault).disable_cuda_aware(t_fault);
  fault::Injector inj(fplan);

  Cluster cluster(topo::summit(), 2, 2);
  check::Checker chk(cluster.engine());
  cluster.set_checker(&chk);
  cluster.set_fault_injector(&inj);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.set_methods(MethodFlags::kAllCudaAware | MethodFlags::kStaged);
    dd.set_persistent(true);
    dd.realize();

    dd.exchange();
    const std::uint64_t admitted_before = dd.plan_stats().verifications;
    EXPECT_GE(admitted_before, 1u);

    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    // First post-fault exchange trips the demotions mid-replay (dirtying the
    // plan); the second migrates the dirty programs and re-admits the plan.
    dd.exchange();
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();

    EXPECT_GT(dd.topology_epoch(), 0u);
    EXPECT_GT(dd.plan_stats().verifications, admitted_before)
        << "migrated plan was not re-verified";
    EXPECT_EQ(dd.plan_stats().rejections, 0u);
    for (const auto& p : dd.plan_cache().entries()) {
      EXPECT_EQ(p->dirty_count(), 0u);
      const verify::Report rep = dd.verify_plan(*p);
      EXPECT_TRUE(rep.clean()) << "plan { " << p->key.str() << " }\n" << dump(rep);
    }

    // A pure cache hit does not re-run the verifier.
    const std::uint64_t admitted_after = dd.plan_stats().verifications;
    dd.exchange();
    EXPECT_EQ(dd.plan_stats().verifications, admitted_after);
    ctx.comm.barrier();
  });
  EXPECT_TRUE(chk.report().clean()) << dump(chk.report());
}

// Disabling verification removes the admission hook entirely.
TEST(VerifyPlans, OptOutSkipsAdmission) {
  Cluster cluster(topo::summit(), 1, 2);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {32, 32, 32});
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.set_methods(MethodFlags::kAll);
    dd.set_persistent(true);
    dd.set_verify_plans(false);
    dd.realize();
    dd.exchange();
    EXPECT_EQ(dd.plan_stats().verifications, 0u);
    ctx.comm.barrier();
  });
}
