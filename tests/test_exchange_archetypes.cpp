// Exchange correctness across node archetypes: the same application code
// must produce bit-exact halos whether the platform has NVLink peer pairs
// (Summit), all-peer (DGX-like), or nothing but PCIe + plain MPI, and
// whether ranks die or configs mismatch the library must fail loudly.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::RankCtx;

namespace {

float coord_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) + 4.0e6f * static_cast<float>(q);
}

void fill(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = coord_value({o.x + x, o.y + y, o.z + z}, q);
    }
  });
}

int check(DistributedDomain& dd, std::size_t nq) {
  int bad = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
    const Dim3 o = ld.origin();
    const Dim3 s = ld.size();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < s.z + r; ++z)
        for (std::int64_t y = -r; y < s.y + r; ++y)
          for (std::int64_t x = -r; x < s.x + r; ++x) {
            if (Dim3{x, y, z}.inside(s)) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(dd.domain());
            bad += v(x, y, z) != coord_value(g, q);
          }
    }
  });
  return bad;
}

struct ArchCase {
  const char* name;
  stencil::topo::NodeArchetype arch;
  int nodes;
  int rpn;
  MethodFlags flags;
};

class ArchSweep : public ::testing::TestWithParam<int> {};

std::vector<ArchCase> cases() {
  return {
      {"summit-2n3r-all", stencil::topo::summit(), 2, 3, MethodFlags::kAll},
      {"summit-1n6r-allca", stencil::topo::summit(), 1, 6, MethodFlags::kAllCudaAware},
      {"dgx-2n2r-all", stencil::topo::dgx_like(4), 2, 2, MethodFlags::kAll},
      {"dgx-1n4r-all", stencil::topo::dgx_like(4), 1, 4, MethodFlags::kAll},
      {"dgx-1n1r-staged", stencil::topo::dgx_like(4), 1, 1, MethodFlags::kStaged},
      {"pcie-2n2r-all", stencil::topo::pcie_box(2), 2, 2, MethodFlags::kAll},
      {"pcie-1n1r-all", stencil::topo::pcie_box(2), 1, 1, MethodFlags::kAll},
      {"pcie-2n1r-staged", stencil::topo::pcie_box(2), 2, 1, MethodFlags::kStaged},
  };
}

}  // namespace

TEST_P(ArchSweep, HalosBitExact) {
  const ArchCase c = cases()[static_cast<std::size_t>(GetParam())];
  SCOPED_TRACE(c.name);
  Cluster cluster(c.arch, c.nodes, c.rpn);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {22, 18, 14});
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(c.flags);
    dd.realize();
    fill(dd, 2);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_EQ(check(dd, 2), 0);
  });
}

INSTANTIATE_TEST_SUITE_P(AllArchetypes, ArchSweep, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string n = cases()[static_cast<std::size_t>(info.param)].name;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(FailureInjection, RankDiesMidExchangeUnwindsJob) {
  Cluster cluster(stencil::topo::summit(), 1, 6);
  EXPECT_THROW(cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 24, 24});
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kStaged);
    dd.realize();
    if (ctx.rank() == 3) throw std::runtime_error("rank 3 crashed");
    dd.exchange();  // blocks on rank 3's sends; must unwind, not hang
  }),
               std::runtime_error);
}

TEST(FailureInjection, MismatchedRadiusAcrossRanksDetected) {
  // Ranks disagreeing on the radius produce different message sizes; the
  // MPI layer reports truncation instead of corrupting halos.
  Cluster cluster(stencil::topo::summit(), 1, 2);
  EXPECT_THROW(cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 24, 24});
    dd.set_radius(ctx.rank() == 0 ? 2 : 1);
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kStaged);
    dd.realize();
    dd.exchange();
  }),
               std::runtime_error);
}

TEST(FailureInjection, OneSidedExchangeDeadlocks) {
  // Only one rank calls exchange(): its receives can never match, and the
  // engine's deadlock detector (not a hang) reports it.
  Cluster cluster(stencil::topo::summit(), 2, 1);
  EXPECT_THROW(cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 24, 24});
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kStaged);
    dd.realize();
    if (ctx.rank() == 0) dd.exchange();
  }),
               stencil::sim::DeadlockError);
}
