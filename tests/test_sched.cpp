// stencil::sched — multi-tenant scheduler tests: tenant slicing, admission /
// queueing / rejection, placement policies, backfill, fair-share vs strict
// priority, co-tenant data correctness (bit-exact vs solo), checker and
// cross-tenant verifier cleanliness, and tenant-labeled tracing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/tenant.h"
#include "sched/sched.h"
#include "topo/archetype.h"

using stencil::Boundary;
using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::LocalDomain;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::RankCtx;
using stencil::core::TenantView;
using stencil::sched::Admission;
using stencil::sched::Capacity;
using stencil::sched::JobSpec;
using stencil::sched::JobState;
using stencil::sched::MachineState;
using stencil::sched::PlacePolicy;
using stencil::sched::RunReport;
using stencil::sched::Scheduler;
using stencil::sched::SchedPolicy;
using stencil::sched::TenantReport;

namespace {

JobSpec small_job(const std::string& name, const std::string& user, int gpus,
                  Dim3 domain = {48, 48, 48}) {
  JobSpec s;
  s.name = name;
  s.user = user;
  s.gpus = gpus;
  s.domain = domain;
  s.radius = 1;
  s.quantities = 1;
  s.iterations = 2;
  return s;
}

// Encode a global coordinate as an exactly-representable float.
float expected_value(Dim3 g) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z);
}

void fill_interior(DistributedDomain& dd) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    auto v = ld.view<float>(0);
    const Dim3 o = ld.origin();
    for (std::int64_t z = 0; z < ld.size().z; ++z) {
      for (std::int64_t y = 0; y < ld.size().y; ++y) {
        for (std::int64_t x = 0; x < ld.size().x; ++x) {
          v(x, y, z) = expected_value({o.x + x, o.y + y, o.z + z});
        }
      }
    }
  });
}

// Every halo cell must hold the periodically wrapped neighbor value —
// bit-exact, so a co-tenant run passing this is bit-identical to a solo run
// (both must equal the same analytic picture).
int count_bad_halos(DistributedDomain& dd, Dim3 domain) {
  int bad = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    auto v = ld.view<float>(0);
    for (std::int64_t z = -r; z < sz.z + r; ++z) {
      for (std::int64_t y = -r; y < sz.y + r; ++y) {
        for (std::int64_t x = -r; x < sz.x + r; ++x) {
          const bool halo = x < 0 || x >= sz.x || y < 0 || y >= sz.y || z < 0 || z >= sz.z;
          if (!halo) continue;
          const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
          bad += v(x, y, z) != expected_value(g);
        }
      }
    }
  });
  return bad;
}

}  // namespace

TEST(SchedShapes, FactorizationsWithinMachine) {
  // 12 ranks on a 4x6 machine: c in {6,4,3,2,1} with k=12/c <= 4.
  const auto s = Scheduler::shapes(12, 4, 6);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], std::make_pair(2, 6));
  EXPECT_EQ(s[1], std::make_pair(3, 4));
  EXPECT_EQ(s[2], std::make_pair(4, 3));
  EXPECT_TRUE(Scheduler::shapes(7, 4, 6).empty());  // 7 = 7x1 needs 7 nodes
  EXPECT_EQ(Scheduler::shapes(1, 1, 1).size(), 1u);
}

TEST(SchedAdmission, RejectsNeverFitsAtSubmit) {
  Cluster cluster(stencil::topo::summit(), 2, 6);
  Scheduler sched(cluster);
  const int too_big = sched.submit(small_job("huge", "u", 13));  // 13 > 12 slots
  EXPECT_EQ(sched.state(too_big), JobState::kRejected);
  EXPECT_FALSE(sched.reject_reason(too_big).empty());
  const int bad = sched.submit([] {
    JobSpec s;
    s.gpus = 0;
    return s;
  }());
  EXPECT_EQ(sched.state(bad), JobState::kRejected);
  const int ok = sched.submit(small_job("fits", "u", 12));
  EXPECT_EQ(sched.state(ok), JobState::kQueued);
  EXPECT_EQ(sched.queued(), 1u);
}

TEST(SchedAdmission, LinkBudgetQueuesJob) {
  Cluster cluster(stencil::topo::summit(), 4, 6);
  Scheduler::Options opt;
  opt.capacity.link_bytes_per_node = 1;  // any internode traffic busts the budget
  Scheduler sched(cluster, opt);
  // 24 GPUs forces a multi-node shape whose per-node NIC load exceeds 1 byte.
  const int id = sched.submit(small_job("wide", "u", 24, {96, 96, 96}));
  EXPECT_EQ(sched.state(id), JobState::kRejected);
  // A single-vnode job has zero NIC load and passes the same budget.
  Scheduler sched2(cluster, opt);
  EXPECT_EQ(sched2.state(sched2.submit(small_job("narrow", "u", 6))), JobState::kQueued);
}

TEST(SchedPlacement, TenantViewInvariantsHold) {
  Cluster cluster(stencil::topo::summit(), 4, 6);
  Scheduler sched(cluster);
  MachineState ms;
  ms.used.assign(4, 0);
  ms.link.assign(4, 0);
  ms.pinned.assign(4, 0);
  const auto adm = sched.try_place(small_job("t", "u", 8), ms, PlacePolicy::kNodeAware);
  ASSERT_TRUE(adm.has_value());
  TenantView v = adm->view;
  v.id = 3;
  EXPECT_NO_THROW(v.validate());
  EXPECT_EQ(v.world_size(), 8);
  EXPECT_EQ(static_cast<int>(adm->world_ranks.size()), 8);
  // Dense vnode-major member list maps back onto the slice.
  for (std::size_t m = 0; m < adm->world_ranks.size(); ++m) {
    const int wr = adm->world_ranks[m];
    const int vnode = static_cast<int>(m) / v.ranks_per_vnode;
    EXPECT_EQ(wr / 6, v.phys_node(vnode));  // rank slot lives on the vnode's node
  }
}

TEST(SchedPlacement, PackedFillsFragmentsSpreadFansOut) {
  Cluster cluster(stencil::topo::summit(), 4, 6);
  Scheduler sched(cluster);
  MachineState ms;
  ms.used.assign(4, 0);
  ms.link.assign(4, 0);
  ms.pinned.assign(4, 0);

  // First job (4 slots): packed takes one node, most-loaded-first = node 0.
  const auto t0 = sched.try_place(small_job("t0", "u", 4), ms, PlacePolicy::kPacked);
  ASSERT_TRUE(t0.has_value());
  EXPECT_EQ(t0->vnodes, 1);
  EXPECT_EQ(t0->nodes, std::vector<int>{0});
  ms.used[0] += 4;

  // Second job: the 2-slot fragment on node 0 caps the preferred vnode
  // width, so packed goes 2x2 across nodes 0 and 1 instead of opening a
  // fresh whole node.
  const auto t1 = sched.try_place(small_job("t1", "u", 4), ms, PlacePolicy::kPacked);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->vnodes, 2);
  EXPECT_EQ(t1->ranks_per_vnode, 2);
  EXPECT_EQ(t1->nodes, (std::vector<int>{0, 1}));
  EXPECT_EQ(t1->slot_base, (std::vector<int>{4, 0}));
  EXPECT_GT(t1->internode_bytes, 0u);

  // Spread always fans out to the widest feasible shape.
  const auto sp = sched.try_place(small_job("sp", "u", 4), ms, PlacePolicy::kSpread);
  ASSERT_TRUE(sp.has_value());
  EXPECT_EQ(sp->vnodes, 4);
  EXPECT_EQ(sp->ranks_per_vnode, 1);

  // Node-aware avoids both the fragment and the co-tenant: a whole empty
  // node costs zero internode traffic and zero link overlap.
  const auto na = sched.try_place(small_job("na", "u", 4), ms, PlacePolicy::kNodeAware);
  ASSERT_TRUE(na.has_value());
  EXPECT_EQ(na->vnodes, 1);
  EXPECT_EQ(na->nodes, std::vector<int>{1});
  EXPECT_EQ(na->internode_bytes, 0u);
}

TEST(SchedPolicy, StrictPriorityOrdersWavesAndBackfills) {
  Cluster cluster(stencil::topo::summit(), 2, 6);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  Scheduler::Options opt;
  opt.policy = SchedPolicy::kStrictPriority;
  opt.cross_verify = false;
  Scheduler sched(cluster, opt);
  JobSpec a = small_job("low-first", "u", 8);
  a.priority = 1;
  JobSpec b = small_job("high-big", "u", 8);
  b.priority = 9;
  JobSpec c = small_job("low-small", "u", 4);
  c.priority = 0;
  sched.submit(a);
  sched.submit(b);
  sched.submit(c);
  const RunReport rep = sched.run();
  ASSERT_EQ(rep.tenants.size(), 3u);
  // Wave 0: high-big (8 slots) first; low-first (8) no longer fits the
  // remaining 4 slots, but low-small (4) backfills around it.
  EXPECT_EQ(rep.by_name("high-big")->wave, 0);
  EXPECT_EQ(rep.by_name("low-small")->wave, 0);
  EXPECT_EQ(rep.by_name("low-first")->wave, 1);
  EXPECT_EQ(rep.waves, 2);
}

TEST(SchedPolicy, FairShareAlternatesUsers) {
  Cluster cluster(stencil::topo::summit(), 1, 6);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  Scheduler::Options opt;
  opt.policy = SchedPolicy::kFairShare;
  opt.cross_verify = false;
  Scheduler sched(cluster, opt);
  // alice submits two whole-machine jobs, then bob one: with zero usage all
  // around, submit order seeds wave 0 with alice; her accumulated usage then
  // pushes her second job behind bob's.
  sched.submit(small_job("alice-1", "alice", 6));
  sched.submit(small_job("alice-2", "alice", 6));
  sched.submit(small_job("bob-1", "bob", 6));
  const RunReport rep = sched.run();
  ASSERT_EQ(rep.tenants.size(), 3u);
  EXPECT_EQ(rep.by_name("alice-1")->wave, 0);
  EXPECT_EQ(rep.by_name("bob-1")->wave, 1);
  EXPECT_EQ(rep.by_name("alice-2")->wave, 2);
}

TEST(SchedRun, CoTenantsExchangeBitExactWithCleanChecker) {
  Cluster cluster(stencil::topo::summit(), 4, 6);
  stencil::check::Checker checker(cluster.engine());
  Scheduler::Options opt;
  opt.place = PlacePolicy::kNodeAware;
  opt.checker = &checker;
  opt.solo_baseline = true;
  Scheduler sched(cluster, opt);

  std::atomic<int> bad{0};
  std::atomic<int> verified_ranks{0};
  const auto make = [&](const std::string& name, int gpus, Dim3 domain, int radius) {
    JobSpec s = small_job(name, "u", gpus, domain);
    s.radius = radius;
    s.prologue = [](DistributedDomain& dd) { fill_interior(dd); };
    s.epilogue = [&bad, &verified_ranks, domain](DistributedDomain& dd) {
      bad += count_bad_halos(dd, domain);
      ++verified_ranks;
    };
    return s;
  };
  // Three tenants with different shapes, radii, and domains.
  sched.submit(make("jobA", 8, {48, 48, 48}, 1));
  sched.submit(make("jobB", 4, {40, 40, 40}, 2));
  sched.submit(make("jobC", 6, {36, 36, 36}, 1));
  const RunReport rep = sched.run();

  ASSERT_EQ(rep.tenants.size(), 3u);
  EXPECT_EQ(rep.waves, 1);  // 8+4+6 = 18 slots of 24: all co-scheduled
  // Every halo of every tenant carries the exact analytic value, in the
  // co-run AND in the solo baseline re-runs (epilogue fires in both).
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(verified_ranks.load(), 2 * (8 + 4 + 6) / cluster.gpus_per_rank());
  // All per-tenant plans were admitted by stencil::verify (persistent jobs
  // throw AdmissionError otherwise) and the cross-tenant pass found nothing.
  EXPECT_EQ(rep.verify_findings, 0u);
  // The happens-before checker watched every tenant concurrently: clean.
  EXPECT_TRUE(checker.report().clean()) << checker.report().summary();
  for (const auto& t : rep.tenants) {
    EXPECT_GT(t.p95_ms, 0.0) << t.name;
    EXPECT_GT(t.solo_p95_ms, 0.0) << t.name;
    EXPECT_GT(t.bytes_per_exchange, 0u) << t.name;
    EXPECT_GE(t.interference, -1e-9) << t.name;
  }
}

TEST(SchedRun, NodeAwareMinimizesInterference) {
  // The acceptance scenario: 3 tenants x 4 GPUs on a 4-node machine. With
  // node-aware placement every tenant owns a whole node slice and the
  // co-run is bit-identical in time to the solo runs (zero interference);
  // spread shares every NIC and must interfere. Halos are made heavy
  // (radius 2, four 8-byte quantities) so NIC serialization is visible
  // against the per-iteration latency floor.
  const auto run_policy = [](PlacePolicy p) {
    Cluster cluster(stencil::topo::summit(), 4, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    Scheduler::Options opt;
    opt.place = p;
    opt.solo_baseline = true;
    Scheduler sched(cluster, opt);
    for (const char* name : {"t0", "t1", "t2"}) {
      JobSpec s = small_job(name, "u", 4, {96, 96, 96});
      s.radius = 2;
      s.quantities = 4;
      s.elem_size = 8;
      s.iterations = 5;
      s.methods = MethodFlags::kStaged | MethodFlags::kColocated | MethodFlags::kPeer |
                  MethodFlags::kKernel;
      sched.submit(s);
    }
    const RunReport rep = sched.run();
    double worst = 0.0;
    for (const auto& t : rep.tenants) worst = std::max(worst, t.interference);
    return worst;
  };
  const double aware = run_policy(PlacePolicy::kNodeAware);
  const double packed = run_policy(PlacePolicy::kPacked);
  const double spread = run_policy(PlacePolicy::kSpread);
  EXPECT_NEAR(aware, 0.0, 1e-9);  // whole-node tenants share no links
  EXPECT_GT(spread, 0.0);         // every tenant crosses every NIC
  EXPECT_LE(aware, packed + 1e-9);
  EXPECT_LE(aware, spread + 1e-9);
}

TEST(SchedRun, BlameAttributesCriticalPathToTenants) {
  Cluster cluster(stencil::topo::summit(), 2, 6);
  Scheduler::Options opt;
  opt.blame = true;
  opt.cross_verify = false;
  Scheduler sched(cluster, opt);
  sched.submit(small_job("left", "u", 6));
  sched.submit(small_job("right", "u", 6));
  const RunReport rep = sched.run();
  ASSERT_EQ(rep.tenants.size(), 2u);
  double total_blame = 0.0;
  for (const auto& t : rep.tenants) total_blame += t.blame_ms;
  EXPECT_GT(total_blame, 0.0);
  EXPECT_GT(rep.makespan_ms, 0.0);
  EXPECT_GT(rep.aggregate_gb_s, 0.0);
}

TEST(SchedRun, TenantTelemetryIsIsolated) {
  // Each tenant's DistributedDomain owns its own telemetry; the exchange
  // counters of one tenant must reflect only its own iterations.
  Cluster cluster(stencil::topo::summit(), 2, 6);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  Scheduler sched(cluster, [] {
    Scheduler::Options o;
    o.cross_verify = false;
    return o;
  }());
  std::atomic<int> wrong{0};
  for (const char* name : {"a", "b"}) {
    JobSpec s = small_job(name, "u", 6);
    s.iterations = 3;
    s.epilogue = [&wrong](DistributedDomain& dd) {
      wrong += dd.exchanges_done() != 3;
    };
    sched.submit(s);
  }
  const RunReport rep = sched.run();
  EXPECT_EQ(rep.waves, 1);
  EXPECT_EQ(wrong.load(), 0);
}
