// Distributed tracing (src/dtrace, DESIGN.md §12): context propagation
// across every exchange method, deterministic cross-rank merging, the
// offline per-rank-file workflow, message edges in the critical path, and
// the progress/stall monitor's detection thresholds.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "dtrace/collector.h"
#include "dtrace/progress.h"
#include "fault/fault.h"
#include "simtime/time.h"
#include "telemetry/critical_path.h"
#include "telemetry/flight_recorder.h"
#include "topo/archetype.h"

using namespace stencil;
namespace dtrace = stencil::dtrace;
namespace fault = stencil::fault;
namespace telemetry = stencil::telemetry;
using dtrace::Collector;
using dtrace::ProgressMonitor;
using trace::FlowEdge;
using trace::OpRecord;

namespace {

/// Minimal recursive-descent JSON validator (same approach as
/// test_telemetry): enough to reject unbalanced structure, bad escapes, or
/// trailing junk without a JSON library.
struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  explicit JsonParser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  bool string_() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (static_cast<unsigned char>(s[i]) < 0x20) return false;
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    if (s[i] == '"') return string_();
    if (s[i] == '{') return object();
    if (s[i] == '[') return array();
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }
  bool object() {
    if (s[i] != '{') return false;
    ++i;
    ws();
    if (i < s.size() && s[i] == '}') return ++i, true;
    while (true) {
      ws();
      if (!string_()) return false;
      ws();
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= s.size() || s[i] != '}') return false;
    ++i;
    return true;
  }
  bool array() {
    if (s[i] != '[') return false;
    ++i;
    ws();
    if (i < s.size() && s[i] == ']') return ++i, true;
    while (true) {
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= s.size() || s[i] != ']') return false;
    ++i;
    return true;
  }
  bool parse() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};

bool valid_json(const std::string& text) { return JsonParser(text).parse(); }

topo::NodeArchetype small_node() {
  topo::NodeArchetype arch = topo::summit();
  arch.gpus_per_socket = 1;  // 2 sockets -> 2 GPUs per node
  return arch;
}

struct RunOpts {
  int nodes = 2;
  int ranks_per_node = 2;
  MethodFlags flags = MethodFlags::kAll;
  bool persistent = false;
  int iters = 2;
  std::int64_t edge = 32;
  int quantities = 1;
};

/// Runs `iters` recorded exchanges on a small cluster under `col`. With
/// persistent=true the plan-compiling first exchange runs unrecorded, so
/// the collector sees only persistent replays (start + graph launch).
void run_collected(Collector* col, const RunOpts& o, const fault::Injector* inj = nullptr,
                   sim::Time t_fault = 0) {
  Cluster cluster(small_node(), o.nodes, o.ranks_per_node);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  if (inj != nullptr) cluster.set_fault_injector(inj);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {o.edge, o.edge, o.edge});
    dd.set_radius(1);
    for (int q = 0; q < o.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(o.flags);
    dd.set_persistent(o.persistent);
    dd.realize();
    if (o.persistent) {
      ctx.comm.barrier();
      dd.exchange();  // compiles the plan, unrecorded
    }
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_collector(col);
    ctx.comm.barrier();
    for (int it = 0; it < o.iters; ++it) {
      if (t_fault > 0 && it == o.iters - 1) {
        ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
      }
      ctx.comm.barrier();
      dd.exchange();
    }
    ctx.comm.barrier();
    if (ctx.rank() == 0) cluster.set_recorder(nullptr);
  });
}

bool is_wire_span(const OpRecord& r) {
  return r.lane.rfind("mpi.r", 0) == 0 &&
         (r.label.rfind("msg ", 0) == 0 || r.label.rfind("ca-msg ", 0) == 0);
}

std::string merged(const Collector& col) {
  std::ostringstream os;
  col.write_merged_chrome_trace(os);
  return os.str();
}

}  // namespace

TEST(DtraceCollector, RankAttribution) {
  Collector col;
  col.set_topology(/*world_size=*/4, /*gpus_per_rank=*/3);
  EXPECT_EQ(col.rank_of_lane("rank2.cpu"), 2);
  EXPECT_EQ(col.rank_of_lane("rank0.mpi"), 0);
  EXPECT_EQ(col.rank_of_lane("mpi.r1->r3"), 1);  // the sender initiates
  EXPECT_EQ(col.rank_of_lane("gpu5.kernel"), 1);  // 5 / 3 gpus per rank
  EXPECT_EQ(col.rank_of_lane("gpu0->gpu1"), 0);
  EXPECT_EQ(col.rank_of_lane("exchange"), -1);
  EXPECT_EQ(col.rank_of_lane("barrier#3"), -1);
}

TEST(DtraceCollector, EveryWireSpanCarriesContextFlows) {
  Collector col;
  run_collected(&col, RunOpts{});
  ASSERT_FALSE(col.records().empty());
  ASSERT_FALSE(col.flows().empty());

  // Index flows by endpoint span.
  std::map<std::uint64_t, int> into, outof;
  for (const FlowEdge& f : col.flows()) {
    ++into[f.to_span];
    ++outof[f.from_span];
  }
  std::size_t wires = 0;
  for (const OpRecord& r : col.records()) {
    if (!is_wire_span(r)) continue;
    ++wires;
    // post/start -> wire ("msg tag=") and wire -> adoption ("deliver tag=").
    EXPECT_GE(into[r.id], 1) << "wire span " << r.id << " (" << r.label << ") has no inbound flow";
    EXPECT_GE(outof[r.id], 1) << "wire span " << r.id << " (" << r.label
                              << ") was never adopted by its receive";
  }
  EXPECT_GT(wires, 0u);
  // Every stamped context resolved by the end of the run.
  EXPECT_TRUE(col.inflight().empty());
}

TEST(DtraceCollector, CudaAwareWireSpansCarryContextFlows) {
  Collector col;
  RunOpts o;
  o.flags = MethodFlags::kAllCudaAware;
  run_collected(&col, o);
  std::map<std::uint64_t, int> into;
  for (const FlowEdge& f : col.flows()) ++into[f.to_span];
  std::size_t ca_wires = 0;
  for (const OpRecord& r : col.records()) {
    if (r.label.rfind("ca-msg ", 0) != 0) continue;
    ++ca_wires;
    EXPECT_GE(into[r.id], 1);
  }
  EXPECT_GT(ca_wires, 0u);
  EXPECT_TRUE(col.inflight().empty());
}

TEST(DtraceCollector, IpcHandshakesCarryFlows) {
  // One node, two ranks: cross-rank neighbors go COLOCATED (cudaIpc). The
  // handshake draws an arrow from the sender's IPC copy into the receiving
  // rank's adoption marker.
  Collector col;
  RunOpts o;
  o.nodes = 1;
  run_collected(&col, o);
  std::size_t ipc_flows = 0;
  for (const FlowEdge& f : col.flows()) {
    if (f.label.rfind("ipc tag=", 0) == 0) ++ipc_flows;
  }
  EXPECT_GT(ipc_flows, 0u);
}

TEST(DtraceCollector, PersistentReplayPropagatesContexts) {
  Collector col;
  RunOpts o;
  o.persistent = true;
  run_collected(&col, o);
  // Replays restart persistent requests: the marker spans say "start", not
  // "post", and every wire span still carries its flows.
  std::size_t starts = 0;
  for (const OpRecord& r : col.records()) {
    if (r.label.rfind("start tag=", 0) == 0) ++starts;
  }
  EXPECT_GT(starts, 0u);
  std::map<std::uint64_t, int> into, outof;
  for (const FlowEdge& f : col.flows()) {
    ++into[f.to_span];
    ++outof[f.from_span];
  }
  std::size_t wires = 0;
  for (const OpRecord& r : col.records()) {
    if (!is_wire_span(r)) continue;
    ++wires;
    EXPECT_GE(into[r.id], 1);
    EXPECT_GE(outof[r.id], 1);
  }
  EXPECT_GT(wires, 0u);
  EXPECT_TRUE(col.inflight().empty());
}

TEST(DtraceCollector, DemotionToStagedKeepsPropagating) {
  // Peer + IPC loss mid-run: the last recorded exchange reroutes former
  // COLOCATED/PEER transfers over staged MPI. Those sends are fresh posts
  // and must stamp contexts like any other.
  const sim::Time t_fault = sim::from_seconds(1.0);
  fault::FaultPlan plan;
  plan.revoke_peer(t_fault, -1, -1).invalidate_ipc(t_fault);
  fault::Injector inj(plan);

  Collector col;
  RunOpts o;
  o.nodes = 1;
  o.iters = 2;  // one healthy exchange, one demoted
  run_collected(&col, o, &inj, t_fault);

  std::map<std::uint64_t, int> into;
  for (const FlowEdge& f : col.flows()) ++into[f.to_span];
  std::size_t late_wires = 0;
  for (const OpRecord& r : col.records()) {
    if (!is_wire_span(r)) continue;
    if (r.start < t_fault) continue;  // the demoted exchange's messages
    ++late_wires;
    EXPECT_GE(into[r.id], 1);
  }
  EXPECT_GT(late_wires, 0u) << "demotion produced no staged MPI traffic";
  EXPECT_TRUE(col.inflight().empty());
}

TEST(DtraceCollector, MergedTraceIsDeterministic) {
  Collector a, b;
  run_collected(&a, RunOpts{});
  run_collected(&b, RunOpts{});
  const std::string ta = merged(a);
  const std::string tb = merged(b);
  EXPECT_EQ(ta, tb) << "same config, same seed: merged traces must be byte-identical";
  EXPECT_TRUE(valid_json(ta));
  // Flow events present and paired.
  std::size_t s = 0, f = 0;
  for (std::size_t p = ta.find("\"ph\":\"s\""); p != std::string::npos;
       p = ta.find("\"ph\":\"s\"", p + 1)) {
    ++s;
  }
  for (std::size_t p = ta.find("\"ph\":\"f\""); p != std::string::npos;
       p = ta.find("\"ph\":\"f\"", p + 1)) {
    ++f;
  }
  EXPECT_EQ(s, a.flows().size());
  EXPECT_EQ(f, a.flows().size());
}

TEST(DtraceCollector, OfflineMergeMatchesDirectMerge) {
  Collector col;
  run_collected(&col, RunOpts{});
  ASSERT_GE(col.max_rank(), 1);

  std::vector<std::string> docs;
  for (int r = -1; r <= col.max_rank(); ++r) {
    std::ostringstream os;
    col.write_rank_json(os, r);
    docs.push_back(os.str());
    EXPECT_TRUE(valid_json(docs.back())) << "rank " << r << " export is not valid JSON";
  }
  const Collector rebuilt = Collector::merge(docs);
  EXPECT_EQ(rebuilt.records().size(), col.records().size());
  EXPECT_EQ(rebuilt.flows().size(), col.flows().size());
  EXPECT_EQ(merged(rebuilt), merged(col))
      << "offline per-rank merge must reproduce the direct merged trace byte-for-byte";
}

TEST(DtraceCollector, TenantLabelsNamespaceProcessesAndRoundTrip) {
  Collector col;
  run_collected(&col, RunOpts{});
  ASSERT_GE(col.max_rank(), 1);
  col.set_tenant_labels({{0, "jobA"}, {1, "jobB"}});
  EXPECT_EQ(col.tenant_of(0), "jobA");
  EXPECT_EQ(col.tenant_of(1), "jobB");
  EXPECT_EQ(col.tenant_of(2), "");  // unlabeled ranks keep plain names

  // Labeled ranks render as "tenant/rank N" processes in the merged trace.
  const std::string chrome = merged(col);
  EXPECT_NE(chrome.find("jobA/rank 0"), std::string::npos);
  EXPECT_NE(chrome.find("jobB/rank 1"), std::string::npos);
  EXPECT_EQ(chrome.find("jobA/rank 1"), std::string::npos);

  // Per-rank exports carry the label and merge() restores it.
  std::vector<std::string> docs;
  for (int r = -1; r <= col.max_rank(); ++r) {
    std::ostringstream os;
    col.write_rank_json(os, r);
    docs.push_back(os.str());
  }
  EXPECT_NE(docs[1].find("\"tenant\":\"jobA\""), std::string::npos);
  const Collector rebuilt = Collector::merge(docs);
  EXPECT_EQ(rebuilt.tenant_of(0), "jobA");
  EXPECT_EQ(rebuilt.tenant_of(1), "jobB");
  EXPECT_EQ(merged(rebuilt), merged(col));
}

TEST(DtraceCollector, MergeRejectsMalformedInput) {
  EXPECT_THROW(Collector::merge({"not json"}), std::runtime_error);
  EXPECT_THROW(Collector::merge({"{\"schema\": \"other\"}"}), std::runtime_error);
}

TEST(DtraceCriticalPath, ChainCrossesRanksViaMessageEdge) {
  // Synthetic two-rank trace: rank 0 computes, sends; rank 1 adopts and
  // computes on top. The chain must ride the message edge back into rank 0.
  Collector col;
  col.set_topology(2, 1);
  const std::uint64_t work0 = col.record("rank0.cpu", "pack", 0, 100);
  const std::uint64_t wire = col.record("mpi.r0->r1", "msg 4096B", 100, 200);
  const std::uint64_t adopt = col.record("rank1.mpi", "recv tag=1 <-r0", 200, 200);
  const std::uint64_t work1 = col.record("rank1.cpu", "unpack", 200, 400);
  (void)work0;
  (void)work1;
  col.add_flow(work0, wire, 1, "msg tag=1");
  col.add_flow(wire, adopt, 1, "deliver tag=1");

  telemetry::CriticalPath cp(col.records());
  EXPECT_EQ(cp.add_flow_edges(col.flows()), 2u);
  const telemetry::Analysis an = cp.analyze();
  EXPECT_GE(an.rank_crossings, 1);
  ASSERT_FALSE(an.ranks.empty());
  bool chain_has_message_hop = false;
  for (const telemetry::Hop& h : an.chain) chain_has_message_hop |= h.via_message;
  EXPECT_TRUE(chain_has_message_hop);
}

TEST(DtraceCriticalPath, RealExchangeChainCrossesRanks) {
  // The trace_explorer default shape, recorded end to end (realize through
  // teardown): the chain is known to ride a staged MPI message between the
  // two nodes there.
  Collector col;
  Cluster cluster(small_node(), /*nodes=*/2, /*ranks_per_node=*/2);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  cluster.set_collector(&col);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {48, 48, 48});
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.add_data<float>("q1");
    dd.realize();
    for (int it = 0; it < 3; ++it) {
      ctx.comm.barrier();
      dd.exchange();
    }
  });
  telemetry::CriticalPath cp(col.records());
  EXPECT_GT(cp.add_flow_edges(col.flows()), 0u);
  const telemetry::Analysis an = cp.analyze();
  EXPECT_GE(an.rank_crossings, 1) << "a 2-node exchange chain must cross a rank boundary";
}

TEST(DtraceCriticalPath, HbEdgesDedupedAgainstFlowEdges) {
  Collector col;
  col.set_topology(2, 1);
  const std::uint64_t a = col.record("rank0.cpu", "send", 0, 100);
  const std::uint64_t b = col.record("rank1.cpu", "recv", 150, 250);
  col.add_flow(a, b, /*msg=*/7, "msg tag=7");

  telemetry::CriticalPath cp(col.records());
  EXPECT_EQ(cp.add_flow_edges(col.flows()), 1u);
  // The checker reports the same message as a happens-before edge; the
  // analyzer must recognize the identity and not attach it twice.
  std::vector<telemetry::HbEdge> hb{{"rank0", "rank1", 100, 7}};
  EXPECT_EQ(cp.add_hb_edges(hb), 0u);
  // A different message identity on the same spans does attach.
  std::vector<telemetry::HbEdge> other{{"rank0", "rank1", 100, 8}};
  EXPECT_EQ(cp.add_hb_edges(other), 1u);
}

TEST(DtraceProgress, FlagsStragglerAboveBothThresholds) {
  ProgressMonitor mon;
  mon.set_world(4);  // defaults: 2.0x median AND 50us absolute
  const sim::Time base = sim::from_seconds(1.0);
  for (int r = 0; r < 4; ++r) mon.on_exchange_begin(r, 1, base);
  // Ranks 0-2 take 100us; rank 3 takes 300us (3x median, 200us behind).
  for (int r = 0; r < 3; ++r) mon.on_exchange_complete(r, 1, base + 100 * sim::kMicrosecond);
  mon.on_exchange_complete(3, 1, base + 300 * sim::kMicrosecond);

  ASSERT_EQ(mon.alerts().size(), 1u);
  EXPECT_EQ(mon.alerts()[0].rank, 3);
  EXPECT_EQ(mon.alerts()[0].seq, 1u);
  EXPECT_EQ(mon.alerts()[0].lag, 200 * sim::kMicrosecond);
  EXPECT_NE(mon.alerts()[0].detail.find("straggler"), std::string::npos);
}

TEST(DtraceProgress, StaysSilentWithinSlack) {
  ProgressMonitor mon;
  mon.set_world(4);
  const sim::Time base = sim::from_seconds(1.0);
  // 1.3x the median: over the absolute floor but under the 2x relative
  // gate — ordinary jitter, not a straggler.
  for (int r = 0; r < 4; ++r) mon.on_exchange_begin(r, 1, base);
  for (int r = 0; r < 3; ++r) mon.on_exchange_complete(r, 1, base + 300 * sim::kMicrosecond);
  mon.on_exchange_complete(3, 1, base + 390 * sim::kMicrosecond);
  // 3x the median but only 20us behind it: under the absolute floor.
  for (int r = 0; r < 4; ++r) mon.on_exchange_begin(r, 2, base + sim::kMillisecond);
  for (int r = 0; r < 3; ++r) {
    mon.on_exchange_complete(r, 2, base + sim::kMillisecond + 10 * sim::kMicrosecond);
  }
  mon.on_exchange_complete(3, 2, base + sim::kMillisecond + 30 * sim::kMicrosecond);

  EXPECT_TRUE(mon.clean()) << mon.str();
  EXPECT_EQ(mon.exchanges_seen(), 2u);
}

TEST(DtraceProgress, FinishFlagsStalledAndMissingRanks) {
  ProgressMonitor mon;
  mon.set_world(3);
  const sim::Time base = sim::from_seconds(2.0);
  // Ranks 0 and 2 complete exchange 5; rank 1 begins it and hangs.
  for (int r = 0; r < 3; ++r) mon.on_exchange_begin(r, 5, base);
  mon.on_exchange_complete(0, 5, base + 100 * sim::kMicrosecond);
  mon.on_exchange_complete(2, 5, base + 110 * sim::kMicrosecond);
  // Exchange 6: rank 2 never even begins.
  mon.on_exchange_begin(0, 6, base + sim::kMillisecond);
  mon.on_exchange_begin(1, 6, base + sim::kMillisecond);
  mon.on_exchange_complete(0, 6, base + 2 * sim::kMillisecond);
  mon.on_exchange_complete(1, 6, base + 2 * sim::kMillisecond);

  mon.finish(base + 5 * sim::kMillisecond);
  ASSERT_EQ(mon.alerts().size(), 2u);
  EXPECT_EQ(mon.alerts()[0].rank, 1);
  EXPECT_EQ(mon.alerts()[0].seq, 5u);
  EXPECT_NE(mon.alerts()[0].detail.find("never completed"), std::string::npos);
  EXPECT_EQ(mon.alerts()[1].rank, 2);
  EXPECT_EQ(mon.alerts()[1].seq, 6u);
  EXPECT_NE(mon.alerts()[1].detail.find("never began"), std::string::npos);
}

TEST(DtraceProgress, AlertSnapshotsFlightTailAndInflightContexts) {
  telemetry::FlightRecorder flight;
  flight.log(telemetry::EventKind::kError, sim::from_seconds(0.5), "nic", "link down");

  Collector col;
  col.set_topology(4, 1);
  // A send whose completion was never observed: still in the air.
  col.on_context_posted(/*rank=*/2, /*span=*/11, /*seq=*/3, /*serial=*/42);

  ProgressMonitor mon;
  mon.set_world(4);
  mon.set_flight(&flight);
  mon.set_collector(&col);
  const sim::Time base = sim::from_seconds(1.0);
  for (int r = 0; r < 4; ++r) mon.on_exchange_begin(r, 1, base);
  for (int r = 0; r < 3; ++r) mon.on_exchange_complete(r, 1, base + 50 * sim::kMicrosecond);
  mon.on_exchange_complete(3, 1, base + 500 * sim::kMicrosecond);

  ASSERT_EQ(mon.alerts().size(), 1u);
  const dtrace::StallAlert& a = mon.alerts()[0];
  EXPECT_NE(a.flight_tail.find("link down"), std::string::npos);
  ASSERT_EQ(a.inflight.size(), 1u);
  EXPECT_EQ(a.inflight[0].rank, 2);
  EXPECT_EQ(a.inflight[0].span, 11u);
  EXPECT_EQ(a.inflight[0].seq, 3u);
  EXPECT_NE(a.str().find("in-flight contexts"), std::string::npos);
}

TEST(DtraceProgress, LiveRunOnSmallClusterIsClean) {
  // End-to-end wiring: Cluster cross-wires the monitor to the domain's
  // heartbeats; a healthy deterministic run must produce zero alerts.
  ProgressMonitor mon;
  Cluster cluster(small_node(), /*nodes=*/2, /*ranks_per_node=*/2);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  cluster.set_progress_monitor(&mon);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {32, 32, 32});
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.realize();
    for (int it = 0; it < 3; ++it) {
      ctx.comm.barrier();
      dd.exchange();
    }
  });
  mon.finish(cluster.engine().now());
  EXPECT_TRUE(mon.clean()) << mon.str();
  EXPECT_EQ(mon.exchanges_seen(), 3u);
}
