#include <gtest/gtest.h>

#include <sstream>

#include "simtime/time.h"
#include "trace/recorder.h"

namespace sim = stencil::sim;
using stencil::trace::Recorder;

TEST(Recorder, RecordsInOrder) {
  Recorder r;
  r.record("gpu0", "pack", 0, 10);
  r.record("gpu1", "unpack", 5, 15);
  ASSERT_EQ(r.records().size(), 2u);
  EXPECT_EQ(r.records()[0].lane, "gpu0");
  EXPECT_EQ(r.records()[1].label, "unpack");
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(Recorder, CsvSortedByLaneThenStart) {
  Recorder r;
  r.record("b", "second", 20, 30);
  r.record("a", "late", 50, 60);
  r.record("a", "early", 0, 10);
  std::ostringstream os;
  r.write_csv(os);
  const std::string s = os.str();
  EXPECT_EQ(s.find("lane,label,start_us,end_us,duration_us"), 0u);
  EXPECT_LT(s.find("a,early"), s.find("a,late"));
  EXPECT_LT(s.find("a,late"), s.find("b,second"));
}

TEST(Recorder, CsvUsesMicroseconds) {
  Recorder r;
  r.record("x", "op", 1 * sim::kMillisecond, 2 * sim::kMillisecond);
  std::ostringstream os;
  r.write_csv(os);
  EXPECT_NE(os.str().find("x,op,1000,2000,1000"), std::string::npos) << os.str();
}

TEST(Recorder, GanttEmptyIsGraceful) {
  Recorder r;
  std::ostringstream os;
  r.write_gantt(os);
  EXPECT_NE(os.str().find("no operations"), std::string::npos);
}

TEST(Recorder, GanttRendersLanesAndSpans) {
  Recorder r;
  r.record("lane-a", "op", 0, 50);
  r.record("lane-b", "op", 50, 100);
  std::ostringstream os;
  r.write_gantt(os, 0, 100, 10);
  const std::string s = os.str();
  EXPECT_NE(s.find("lane-a"), std::string::npos);
  EXPECT_NE(s.find("lane-b"), std::string::npos);
  // lane-a occupies the first half of its row, lane-b the second half.
  std::istringstream is(s);
  std::string header, row_a, row_b;
  std::getline(is, header);
  std::getline(is, row_a);
  std::getline(is, row_b);
  EXPECT_NE(row_a.find("#####....."), std::string::npos) << row_a;
  EXPECT_NE(row_b.find(".....#####"), std::string::npos) << row_b;
}

TEST(Recorder, GanttAutoFitsRange) {
  Recorder r;
  r.record("x", "op", 1000, 2000);
  std::ostringstream os;
  r.write_gantt(os, 0, 0, 20);  // auto-fit
  EXPECT_NE(os.str().find("1.000 us total"), std::string::npos) << os.str();
}

TEST(Recorder, GanttClampsOutOfRangeSpans) {
  Recorder r;
  r.record("x", "inside", 10, 20);
  r.record("x", "outside", 900, 950);
  std::ostringstream os;
  r.write_gantt(os, 0, 100, 10);  // the 900-950 span clamps to the last column
  SUCCEED();                      // must not crash or write out of bounds
}

TEST(Recorder, ChromeTraceEscapesSpecialCharacters) {
  Recorder r;
  r.record("lane\"with\\quote", "label\nwith\ttabs\rand\x01" "ctrl", 0, 10);
  std::ostringstream os;
  r.write_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("lane\\\"with\\\\quote"), std::string::npos) << s;
  EXPECT_NE(s.find("label\\nwith\\ttabs\\rand\\u0001ctrl"), std::string::npos) << s;
  // No raw control characters survive inside the document (sans final newline).
  for (std::size_t i = 0; i + 1 < s.size(); ++i)
    EXPECT_GE(static_cast<unsigned char>(s[i]), 0x20u) << "at index " << i;
}

TEST(Recorder, ChromeTraceClampsZeroAndNegativeDurations) {
  Recorder r;
  r.record("x", "instant", 100, 100);
  r.record("x", "backwards", 200, 150);  // malformed span must not emit dur < 0
  std::ostringstream os;
  r.write_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_EQ(s.find("\"dur\":-"), std::string::npos) << s;
  EXPECT_NE(s.find("\"dur\":0"), std::string::npos) << s;
}

TEST(Recorder, ChromeTraceEmptyRecorderIsValid) {
  Recorder r;
  std::ostringstream os;
  r.write_chrome_trace(os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}\n");
}

TEST(Recorder, GanttSkipsSpansOutsideWindow) {
  Recorder r;
  r.record("x", "inside", 10, 20);
  r.record("x", "before", 0, 5);
  r.record("x", "after", 900, 950);
  std::ostringstream os;
  r.write_gantt(os, 10, 100, 18);  // 5 ns/col: only [10,20) may mark cells
  std::istringstream is(os.str());
  std::string header, row;
  std::getline(is, header);
  std::getline(is, row);
  // Exactly the first two columns are busy; out-of-window spans leave no mark.
  EXPECT_NE(row.find("|##"), std::string::npos) << row;
  EXPECT_EQ(row.find("##|"), std::string::npos) << row;
}

TEST(Recorder, GanttZeroDurationSpanStillRenders) {
  Recorder r;
  r.record("x", "instant", 50, 50);
  std::ostringstream os;
  r.write_gantt(os, 0, 100, 10);
  EXPECT_NE(os.str().find("#"), std::string::npos) << os.str();
}

TEST(Recorder, LanesKeepFirstAppearanceOrder) {
  Recorder r;
  r.record("zeta", "op", 0, 1);
  r.record("alpha", "op", 1, 2);
  std::ostringstream os;
  r.write_gantt(os, 0, 2, 10);
  const std::string s = os.str();
  EXPECT_LT(s.find("zeta"), s.find("alpha"));
}
