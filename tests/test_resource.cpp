#include <gtest/gtest.h>

#include "simtime/resource.h"

namespace sim = stencil::sim;

TEST(Resource, UncontendedStartsAtReady) {
  sim::Resource r("link");
  const sim::Span s = r.acquire_span(100, 50);
  EXPECT_EQ(s.start, 100);
  EXPECT_EQ(s.end, 150);
  EXPECT_EQ(r.busy_until(), 150);
}

TEST(Resource, FifoQueuesBackToBack) {
  sim::Resource r;
  r.acquire(0, 100);
  const sim::Span s = r.acquire_span(10, 50);  // ready before the link frees
  EXPECT_EQ(s.start, 100);                     // queued behind the first op
  EXPECT_EQ(s.end, 150);
}

TEST(Resource, GapLeavesIdleTime) {
  sim::Resource r;
  r.acquire(0, 10);
  const sim::Span s = r.acquire_span(1000, 10);
  EXPECT_EQ(s.start, 1000);
  EXPECT_EQ(r.busy_total(), 20);
  EXPECT_EQ(r.ops(), 2u);
}

TEST(Resource, ZeroAndNegativeDurations) {
  sim::Resource r;
  EXPECT_EQ(r.acquire(5, 0), 5);
  EXPECT_EQ(r.acquire(5, -10), 5);  // clamped to zero
  EXPECT_EQ(r.busy_total(), 0);
}

TEST(Resource, ResetClearsQueue) {
  sim::Resource r;
  r.acquire(0, 1000);
  r.reset();
  EXPECT_EQ(r.busy_until(), 0);
  EXPECT_EQ(r.ops(), 0u);
  const sim::Span s = r.acquire_span(5, 5);
  EXPECT_EQ(s.start, 5);
}

TEST(Resource, ContentionSerializesConcurrentClaims) {
  // Three transfers all ready at t=0 on one link serialize; on three
  // distinct links they overlap. This is the entire contention model.
  sim::Resource shared;
  sim::Time last = 0;
  for (int i = 0; i < 3; ++i) last = shared.acquire(0, 100);
  EXPECT_EQ(last, 300);

  sim::Resource a, b, c;
  EXPECT_EQ(a.acquire(0, 100), 100);
  EXPECT_EQ(b.acquire(0, 100), 100);
  EXPECT_EQ(c.acquire(0, 100), 100);
}
