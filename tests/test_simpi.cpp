#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "simpi/mpi.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace vgpu = stencil::vgpu;
namespace simpi = stencil::simpi;

namespace {

struct World {
  sim::Engine eng;
  topo::Machine machine;
  vgpu::Runtime runtime;
  simpi::Job job;
  World(int nodes, int ranks_per_node, topo::NodeArchetype arch = topo::summit())
      : machine(std::move(arch), nodes), runtime(eng, machine), job(eng, machine, runtime, ranks_per_node) {}
};

}  // namespace

TEST(Simpi, WorldShape) {
  World w(4, 6);
  EXPECT_EQ(w.job.world_size(), 24);
  EXPECT_EQ(w.job.node_of_rank(0), 0);
  EXPECT_EQ(w.job.node_of_rank(7), 1);
  EXPECT_EQ(w.job.node_of_rank(23), 3);
}

TEST(Simpi, RanksMustDivideGpus) {
  sim::Engine eng;
  topo::Machine m(topo::summit(), 1);
  vgpu::Runtime rt(eng, m);
  EXPECT_THROW(simpi::Job(eng, m, rt, 4), std::invalid_argument);  // 6 % 4 != 0
  EXPECT_THROW(simpi::Job(eng, m, rt, 0), std::invalid_argument);
}

TEST(Simpi, SendRecvMovesHostData) {
  World w(1, 2);
  w.job.run([](simpi::Comm& comm) {
    int value = -1;
    if (comm.rank() == 0) {
      int payload = 42;
      comm.send(simpi::Payload::of_values(&payload, 1), 1, 7);
    } else {
      comm.recv(simpi::Payload::of_values(&value, 1), 0, 7);
      EXPECT_EQ(value, 42);
    }
  });
}

TEST(Simpi, NonBlockingOverlap) {
  World w(1, 2);
  w.job.run([](simpi::Comm& comm) {
    std::vector<int> data(1024);
    if (comm.rank() == 0) {
      std::iota(data.begin(), data.end(), 0);
      auto r1 = comm.isend(simpi::Payload::of_values(data.data(), 512), 1, 1);
      auto r2 = comm.isend(simpi::Payload::of_values(data.data() + 512, 512), 1, 2);
      comm.wait(r1);
      comm.wait(r2);
    } else {
      std::vector<int> a(512), b(512);
      auto r2 = comm.irecv(simpi::Payload::of_values(b.data(), 512), 0, 2);
      auto r1 = comm.irecv(simpi::Payload::of_values(a.data(), 512), 0, 1);
      comm.wait(r1);
      comm.wait(r2);
      EXPECT_EQ(a[0], 0);
      EXPECT_EQ(a[511], 511);
      EXPECT_EQ(b[0], 512);
      EXPECT_EQ(b[511], 1023);
    }
  });
}

TEST(Simpi, TagMatchingIsExact) {
  World w(1, 2);
  w.job.run([](simpi::Comm& comm) {
    if (comm.rank() == 0) {
      int x = 1, y = 2;
      // Send in the "wrong" order relative to the recv posts.
      comm.send(simpi::Payload::of_values(&y, 1), 1, 20);
      comm.send(simpi::Payload::of_values(&x, 1), 1, 10);
    } else {
      int a = 0, b = 0;
      comm.recv(simpi::Payload::of_values(&a, 1), 0, 10);
      comm.recv(simpi::Payload::of_values(&b, 1), 0, 20);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(Simpi, PerTagOrderingPreserved) {
  // Messages with the same (src, tag) arrive in post order.
  World w(1, 2);
  w.job.run([](simpi::Comm& comm) {
    constexpr int kN = 16;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        int v = i;
        comm.send(simpi::Payload::of_values(&v, 1), 1, 5);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        comm.recv(simpi::Payload::of_values(&v, 1), 0, 5);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Simpi, TruncationDetected) {
  World w(1, 2);
  EXPECT_THROW(w.job.run([](simpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> big(8);
      comm.send(simpi::Payload::of_values(big.data(), 8), 1, 0);
    } else {
      int small = 0;
      comm.recv(simpi::Payload::of_values(&small, 1), 0, 0);
    }
  }),
               std::runtime_error);
}

TEST(Simpi, MismatchedTagsDeadlock) {
  World w(1, 2);
  EXPECT_THROW(w.job.run([](simpi::Comm& comm) {
    int v = 0;
    if (comm.rank() == 0) {
      comm.recv(simpi::Payload::of_values(&v, 1), 1, 1);
    } else {
      comm.recv(simpi::Payload::of_values(&v, 1), 0, 2);
    }
  }),
               sim::DeadlockError);
}

TEST(Simpi, DeadlockDiagnosticNamesActorsAndTags) {
  // Mismatched tags hang both ranks; the structured report must say who is
  // blocked, on which gate, and which (peer, tag) each wait is for.
  World w(1, 2);
  bool watchdog_fired = false;
  sim::DeadlockReport observed;
  w.eng.set_watchdog([&](const sim::DeadlockReport& r) {
    watchdog_fired = true;
    observed = r;
  });
  try {
    w.job.run([](simpi::Comm& comm) {
      int v = 0;
      if (comm.rank() == 0) {
        comm.recv(simpi::Payload::of_values(&v, 1), 1, 31);
      } else {
        comm.recv(simpi::Payload::of_values(&v, 1), 0, 32);
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const sim::DeadlockReport& rep = e.report();
    ASSERT_EQ(rep.actors.size(), 2u);
    auto find = [&](const std::string& name) {
      auto it = std::find_if(rep.actors.begin(), rep.actors.end(),
                             [&](const sim::BlockedActorInfo& a) { return a.actor == name; });
      EXPECT_NE(it, rep.actors.end()) << "missing actor " << name;
      return it;
    };
    auto r0 = find("rank0");
    EXPECT_EQ(r0->resource, "rank0.mpi");
    EXPECT_EQ(r0->detail, "recv src=1 tag=31");
    auto r1 = find("rank1");
    EXPECT_EQ(r1->resource, "rank1.mpi");
    EXPECT_EQ(r1->detail, "recv src=0 tag=32");
    const std::string what = e.what();
    EXPECT_NE(what.find("rank0"), std::string::npos);
    EXPECT_NE(what.find("recv src=0 tag=32"), std::string::npos);
  }
  EXPECT_TRUE(watchdog_fired);
  EXPECT_EQ(observed.actors.size(), 2u);
}

TEST(Simpi, IntraNodeFasterThanInterNode) {
  // The same message size takes longer across nodes than within a node.
  sim::Duration intra = 0, inter = 0;
  {
    World w(1, 2);
    w.job.run([&](simpi::Comm& comm) {
      std::vector<char> buf(8 << 20);
      const double t0 = comm.wtime();
      if (comm.rank() == 0) {
        comm.send(simpi::Payload::of_values(buf.data(), buf.size()), 1, 0);
      } else {
        comm.recv(simpi::Payload::of_values(buf.data(), buf.size()), 0, 0);
      }
      if (comm.rank() == 1) intra = sim::from_seconds(comm.wtime() - t0);
    });
  }
  {
    World w(2, 1);
    w.job.run([&](simpi::Comm& comm) {
      std::vector<char> buf(8 << 20);
      const double t0 = comm.wtime();
      if (comm.rank() == 0) {
        comm.send(simpi::Payload::of_values(buf.data(), buf.size()), 1, 0);
      } else {
        comm.recv(simpi::Payload::of_values(buf.data(), buf.size()), 0, 0);
      }
      if (comm.rank() == 1) inter = sim::from_seconds(comm.wtime() - t0);
    });
  }
  EXPECT_GT(intra, 0);
  EXPECT_GT(inter, 0);
  // Summit model: shared-memory copy at 10 GiB/s vs NIC at 22 GiB/s, but the
  // NIC path pays two hops + higher latency; with these sizes intra is
  // slower per-copy but inter contends with nothing here. Just require both
  // are sane and different.
  EXPECT_NE(intra, inter);
}

TEST(Simpi, BarrierSynchronizesAllRanks) {
  World w(2, 3);
  w.job.run([](simpi::Comm& comm) {
    auto* eng = sim::Engine::current();
    // Stagger arrivals; everyone leaves at (or after) the latest arrival.
    eng->sleep_for(comm.rank() * 100 * sim::kMicrosecond);
    comm.barrier();
    EXPECT_GE(eng->now(), 5 * 100 * sim::kMicrosecond);
  });
}

TEST(Simpi, BarrierReusable) {
  World w(1, 6);
  w.job.run([](simpi::Comm& comm) {
    for (int i = 0; i < 5; ++i) {
      comm.barrier();
    }
    SUCCEED();
  });
}

TEST(Simpi, SubCommBarrierSynchronizesOnlyMembers) {
  // Sub-communicator barriers run a dissemination round over the members —
  // they must synchronize the color group without involving (or blocking on)
  // the other color.
  World w(2, 3);
  w.job.run([](simpi::Comm& comm) {
    auto* eng = sim::Engine::current();
    const int color = comm.rank() % 2;          // evens {0,2,4}, odds {1,3,5}
    simpi::Comm sub = comm.split(color, comm.rank());
    // Stagger arrivals inside each group; nobody leaves before the latest
    // member of their own group arrives.
    const sim::Duration arrive = (color == 0 ? sub.rank() : 10 + sub.rank()) * 100 * sim::kMicrosecond;
    eng->sleep_for(arrive);
    sub.barrier();
    if (color == 0) {
      EXPECT_GE(eng->now(), 2 * 100 * sim::kMicrosecond);
      // The even group must not have waited for the odd group's stragglers.
      EXPECT_LT(eng->now(), 10 * 100 * sim::kMicrosecond);
    } else {
      EXPECT_GE(eng->now(), 12 * 100 * sim::kMicrosecond);
    }
    // Back-to-back barriers on the same sub-communicator must not alias.
    sub.barrier();
    sub.barrier();
    SUCCEED();
  });
}

TEST(Simpi, AllgatherCollectsRankMajor) {
  World w(2, 2);
  w.job.run([](simpi::Comm& comm) {
    const int mine = comm.rank() * 11;
    std::vector<int> all(static_cast<std::size_t>(comm.size()), -1);
    comm.allgather(&mine, all.data(), sizeof(int));
    for (int r = 0; r < comm.size(); ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 11);
  });
}

TEST(Simpi, SplitByNode) {
  World w(2, 3);
  w.job.run([](simpi::Comm& comm) {
    simpi::Comm local = comm.split(comm.node(), comm.rank());
    EXPECT_EQ(local.size(), 3);
    EXPECT_EQ(local.world_rank(), comm.world_rank());
    EXPECT_EQ(local.rank(), comm.rank() % 3);
  });
}

TEST(Simpi, DevicePayloadRequiresCudaAware) {
  World w(1, 2, topo::pcie_box(2));
  EXPECT_THROW(w.job.run([&w](simpi::Comm& comm) {
    auto buf = w.runtime.alloc_device(comm.rank(), 64);
    if (comm.rank() == 0) {
      comm.send(simpi::Payload::of(buf, 0, 64), 1, 0);
    } else {
      comm.recv(simpi::Payload::of(buf, 0, 64), 0, 0);
    }
  }),
               std::runtime_error);
}

TEST(Simpi, CudaAwareDeviceToDeviceMovesBytes) {
  World w(1, 2);
  w.job.run([&w](simpi::Comm& comm) {
    auto buf = w.runtime.alloc_device(comm.rank() * 3, 4096);  // GPUs 0 and 3
    if (comm.rank() == 0) {
      std::memset(buf.data(), 0x3C, buf.size());
      comm.send(simpi::Payload::of(buf, 0, 4096), 1, 0);
    } else {
      std::memset(buf.data(), 0, buf.size());
      comm.recv(simpi::Payload::of(buf, 0, 4096), 0, 0);
      EXPECT_EQ(buf.as<std::uint8_t>()[4095], 0x3C);
    }
  });
}

TEST(Simpi, CudaAwarePoisonsDefaultStream) {
  // After a CUDA-aware message involving a device, application streams on
  // that device serialize behind the MPI library's default-stream work.
  World w(1, 2);
  w.job.run([&w](simpi::Comm& comm) {
    auto buf = w.runtime.alloc_device(comm.rank() * 3, 32 << 20);
    if (comm.rank() == 0) {
      comm.send(simpi::Payload::of(buf, 0, buf.size()), 1, 0);
      auto s = w.runtime.create_stream(0);
      const sim::Time before = sim::Engine::current()->now();
      w.runtime.launch_kernel(s, 0, "after-mpi", nullptr);
      EXPECT_GE(w.runtime.stream_frontier(s), before);
      EXPECT_GE(w.runtime.stream_frontier(s), w.runtime.device_frontier(0));
    } else {
      comm.recv(simpi::Payload::of(buf, 0, buf.size()), 0, 0);
    }
  });
}

TEST(Simpi, WtimeMonotonic) {
  World w(1, 1);
  w.job.run([](simpi::Comm& comm) {
    const double a = comm.wtime();
    sim::Engine::current()->sleep_for(sim::kMillisecond);
    const double b = comm.wtime();
    EXPECT_NEAR(b - a, 1e-3, 1e-9);
  });
}

TEST(Simpi, ManyRanksStressDeterminism) {
  auto run_once = [] {
    World w(4, 6);  // 24 ranks
    std::vector<double> times(24, 0.0);
    w.job.run([&](simpi::Comm& comm) {
      // Ring exchange: send to the right, receive from the left.
      const int right = (comm.rank() + 1) % comm.size();
      const int left = (comm.rank() + comm.size() - 1) % comm.size();
      std::vector<char> out(1 << 20, static_cast<char>(comm.rank()));
      std::vector<char> in(1 << 20);
      for (int iter = 0; iter < 3; ++iter) {
        auto r = comm.irecv(simpi::Payload::of_values(in.data(), in.size()), left, iter);
        auto s = comm.isend(simpi::Payload::of_values(out.data(), out.size()), right, iter);
        comm.wait(r);
        comm.wait(s);
        EXPECT_EQ(in[0], static_cast<char>(left));
      }
      times[static_cast<std::size_t>(comm.rank())] = comm.wtime();
    });
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}
