// stencil::watch — live performance layer tests: estimator convergence and
// quantile error bounds, congestion-incident hysteresis (true positive and
// no-false-positive), windowed-floor cost oracle behavior, snapshot
// determinism across identical seeded runs, and the live-cost feedback
// paths into sched placement and recover_replace.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "sched/sched.h"
#include "topo/archetype.h"
#include "watch/estimator.h"
#include "watch/watch.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::RankCtx;
using stencil::watch::Ewma;
using stencil::watch::Incident;
using stencil::watch::P2Quantile;
using stencil::watch::Watch;
using stencil::watch::WireClass;
namespace topo = stencil::topo;
namespace sched = stencil::sched;

namespace {

// Deterministic LCG (no wall clock, no std::random_device) for sample
// streams with a known distribution.
struct Lcg {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
  double uniform() { return static_cast<double>(next() % 1000000) / 1000000.0; }
};

/// Feed one synthetic message on an internode host lane: `pb` ns/byte of
/// wire occupancy with no queueing (ready == span.start).
void feed(Watch& w, int src_node, int dst_node, std::uint64_t bytes, double pb,
          stencil::sim::Time at = 0) {
  const auto dur = static_cast<stencil::sim::Time>(pb * static_cast<double>(bytes));
  w.on_message(/*src_rank=*/src_node, /*dst_rank=*/dst_node, src_node, dst_node,
               /*device=*/false, bytes, at, {at, at + dur});
}

}  // namespace

// --- estimators -------------------------------------------------------------

TEST(Estimator, EwmaConvergesToConstantAndTracksStep) {
  Ewma e(0.25);
  EXPECT_TRUE(e.empty());
  for (int i = 0; i < 10; ++i) e.observe(5.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);  // first sample seeds, constant stays exact
  for (int i = 0; i < 64; ++i) e.observe(9.0);
  EXPECT_NEAR(e.value(), 9.0, 1e-6);  // geometric convergence to the new level
  EXPECT_EQ(e.count(), 74u);
}

TEST(Estimator, P2QuantileExactBelowFiveSamples) {
  P2Quantile q(0.95);
  q.observe(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.observe(1.0);
  q.observe(2.0);
  q.observe(4.0);
  // Nearest-rank p95 of {1,2,3,4} is the max.
  EXPECT_DOUBLE_EQ(q.value(), 4.0);
  EXPECT_EQ(q.count(), 4u);
  q.reset();
  EXPECT_EQ(q.count(), 0u);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(Estimator, P2QuantileSmallWindowNearestRank) {
  // Exact nearest-rank (rank ceil(q*n)) below five samples: a truncating
  // index would return the max for the median of two — the small-window
  // regression this pins down.
  P2Quantile med(0.5);
  med.observe(10.0);
  med.observe(2.0);
  EXPECT_DOUBLE_EQ(med.value(), 2.0);  // rank ceil(0.5*2) = 1 -> the min
  med.observe(6.0);
  EXPECT_DOUBLE_EQ(med.value(), 6.0);  // rank ceil(1.5) = 2 of {2,6,10}
  med.observe(8.0);
  EXPECT_DOUBLE_EQ(med.value(), 6.0);  // rank ceil(2) = 2 of {2,6,8,10}

  P2Quantile p25(0.25);
  p25.observe(4.0);
  p25.observe(1.0);
  p25.observe(3.0);
  p25.observe(2.0);
  EXPECT_DOUBLE_EQ(p25.value(), 1.0);  // rank ceil(1) = 1 of {1,2,3,4}

  // q=0 degenerates to the minimum, and a p95 over four samples still
  // lands on the max (rank ceil(3.8) = 4).
  P2Quantile q0(0.0);
  q0.observe(5.0);
  q0.observe(-1.0);
  EXPECT_DOUBLE_EQ(q0.value(), -1.0);
  P2Quantile p95(0.95);
  for (const double v : {7.0, 5.0, 9.0, 6.0}) p95.observe(v);
  EXPECT_DOUBLE_EQ(p95.value(), 9.0);
}

TEST(Estimator, P2QuantileUniformErrorBound) {
  P2Quantile q(0.95);
  Lcg rng;
  for (int i = 0; i < 5000; ++i) q.observe(rng.uniform() * 1000.0);
  // True p95 of U(0, 1000) is 950; the 5-marker sketch should land within
  // a few percent at this sample count.
  EXPECT_NEAR(q.value(), 950.0, 30.0);
}

TEST(Estimator, P2QuantileMedianOfLinearRamp) {
  P2Quantile q(0.5);
  for (int i = 1; i <= 1001; ++i) q.observe(static_cast<double>(i));
  EXPECT_NEAR(q.value(), 501.0, 10.0);
}

// --- congestion incidents ---------------------------------------------------

TEST(Congestion, OpensAfterStreakAndClosesAfterClears) {
  Watch w;
  w.configure(/*num_nodes=*/2, /*world_size=*/4);
  const std::uint64_t bytes = 8192;
  // Teach the floor: two healthy messages make the bucket eligible to vote.
  feed(w, 0, 1, bytes, 1.0);
  feed(w, 0, 1, bytes, 1.0);
  // Breaches below the open_after streak must not open.
  feed(w, 0, 1, bytes, 2.5);  // stretch 1.5 > congestion_stretch 1.0
  feed(w, 0, 1, bytes, 2.5);
  EXPECT_EQ(w.incidents_opened(), 0u);
  feed(w, 0, 1, bytes, 2.5);  // third consecutive breach: open
  EXPECT_EQ(w.incidents_opened(), 1u);
  EXPECT_EQ(w.incidents_of(Incident::Kind::kCongestedLink), 1u);
  EXPECT_EQ(w.open_incidents(), 1);
  ASSERT_EQ(w.incidents().size(), 1u);
  EXPECT_EQ(w.incidents().front().subject, "link n0->n1 host-inter");
  EXPECT_EQ(w.incidents().front().closed, 0);
  // Still open until close_after consecutive clears.
  feed(w, 0, 1, bytes, 1.0);
  feed(w, 0, 1, bytes, 1.0);
  feed(w, 0, 1, bytes, 1.0);
  EXPECT_EQ(w.open_incidents(), 1);
  feed(w, 0, 1, bytes, 1.0);  // fourth clear: close
  EXPECT_EQ(w.open_incidents(), 0);
  EXPECT_NE(w.incidents().front().closed, 0);
  EXPECT_EQ(w.incidents_opened(), 1u);  // close does not re-count
}

TEST(Congestion, NoFalsePositiveOnCleanOrSubThresholdTraffic) {
  Watch w;
  w.configure(2, 4);
  const std::uint64_t bytes = 8192;
  feed(w, 0, 1, bytes, 1.0);
  // Jitter below the stretch threshold never opens, however long it lasts.
  for (int i = 0; i < 50; ++i) feed(w, 0, 1, bytes, 1.8);  // stretch 0.8 < 1.0
  // Small messages are latency-dominated and must not vote at any stretch.
  for (int i = 0; i < 50; ++i) feed(w, 0, 1, 512, 40.0);
  EXPECT_EQ(w.incidents_opened(), 0u);
  EXPECT_EQ(w.open_incidents(), 0);
}

TEST(Congestion, InterruptedStreakDoesNotOpen) {
  Watch w;
  w.configure(2, 4);
  const std::uint64_t bytes = 8192;
  feed(w, 0, 1, bytes, 1.0);
  feed(w, 0, 1, bytes, 1.0);
  // breach, breach, clear, breach, breach, clear, ... never reaches 3.
  for (int round = 0; round < 10; ++round) {
    feed(w, 0, 1, bytes, 2.5);
    feed(w, 0, 1, bytes, 2.5);
    feed(w, 0, 1, bytes, 1.0);
  }
  EXPECT_EQ(w.incidents_opened(), 0u);
}

// --- windowed-floor cost oracle ---------------------------------------------

TEST(Oracle, WindowedFloorTracksMidLifeDegradation) {
  Watch w;
  w.configure(3, 6);
  const std::uint64_t bytes = 8192;
  // Healthy calibration window on every internode lane.
  for (int s = 0; s < 3; ++s)
    for (int d = 0; d < 3; ++d)
      if (s != d)
        for (int i = 0; i < 3; ++i) feed(w, s, d, bytes, 1.0);
  EXPECT_DOUBLE_EQ(w.live_link_cost_factor(0, 1), 1.0);
  w.publish();
  EXPECT_EQ(w.publish_epoch(), 1u);
  EXPECT_DOUBLE_EQ(w.node_cost_factor(0), 1.0);

  // New window: node 0's wires now cost 4x. The lifetime floor would still
  // remember the healthy past; the windowed floor must not.
  w.clear_window();
  for (int other : {1, 2})
    for (int i = 0; i < 3; ++i) {
      feed(w, 0, other, bytes, 4.0);
      feed(w, other, 0, bytes, 4.0);
    }
  for (int i = 0; i < 3; ++i) {
    feed(w, 1, 2, bytes, 1.0);
    feed(w, 2, 1, bytes, 1.0);
  }
  EXPECT_NEAR(w.live_link_cost_factor(0, 1), 4.0, 1e-9);
  EXPECT_NEAR(w.live_link_cost_factor(1, 0), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.live_link_cost_factor(1, 2), 1.0);
  // Published view is stable until the next publish.
  EXPECT_DOUBLE_EQ(w.node_cost_factor(0), 1.0);
  w.publish();
  EXPECT_GT(w.node_cost_factor(0), w.node_cost_factor(1));
  EXPECT_NEAR(w.link_cost_factor(0, 2), 4.0, 1e-9);
}

TEST(Oracle, DeadbandSnapsHealthyJitterToExactlyOne) {
  Watch w;
  w.configure(2, 4);
  const std::uint64_t bytes = 8192;
  feed(w, 0, 1, bytes, 1.0);  // class floor
  w.clear_window();
  feed(w, 0, 1, bytes, 1.2);  // 20% above floor: inside the 25% dead-band
  EXPECT_DOUBLE_EQ(w.live_link_cost_factor(0, 1), 1.0);
  w.clear_window();
  feed(w, 0, 1, bytes, 1.3);  // 30% above floor: outside
  // Span durations are integer nanoseconds, so the factor is 1.3 +- one
  // truncated ns over 8192 bytes.
  EXPECT_NEAR(w.live_link_cost_factor(0, 1), 1.3, 1e-3);
}

TEST(Oracle, UnpublishedAndOutOfRangeFactorsAreNeutral) {
  Watch w;
  w.configure(2, 4);
  EXPECT_DOUBLE_EQ(w.node_cost_factor(0), 1.0);   // nothing published yet
  EXPECT_DOUBLE_EQ(w.link_cost_factor(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(w.node_cost_factor(-1), 1.0);
  EXPECT_DOUBLE_EQ(w.link_cost_factor(7, 9), 1.0);
  EXPECT_DOUBLE_EQ(w.live_link_cost_factor(0, 0), 1.0);  // intra-node
}

// --- tenant windows ---------------------------------------------------------

TEST(TenantWindow, ExchangeGroupsDropWarmupAndTrackPerIterationMax) {
  Watch w;
  w.configure(2, 4);
  w.set_tenant_map({0, 0, -1, -1}, 1);
  using stencil::sim::kMillisecond;
  // Three iteration groups; the first (plan compile + admission) is warm-up.
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    w.on_exchange_complete(0, seq, 2 * kMillisecond, 0);
    w.on_exchange_complete(1, seq, (seq == 1 ? 5 : 3) * kMillisecond, 0);
  }
  const Watch::TenantWindow tw = w.tenant_window(0);
  EXPECT_EQ(tw.exchanges, 2u);  // groups 1 and 2; group 0 dropped
  // Nearest-rank p95 of {5, 3} is the max of the kept groups.
  EXPECT_DOUBLE_EQ(tw.exch_p95.value(), 5.0);
  EXPECT_DOUBLE_EQ(w.tenant_window(7).exch_p95.value(), 0.0);  // unknown tenant
}

// --- determinism ------------------------------------------------------------

namespace {

std::string watched_run_snapshot() {
  stencil::watch::Watch live;
  Cluster cluster(topo::summit(), 2, 2);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  cluster.set_watch(&live);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {48, 48, 48});
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.realize();
    for (int it = 0; it < 3; ++it) {
      ctx.comm.barrier();
      dd.exchange();
    }
  });
  live.publish();
  std::ostringstream os;
  live.write_snapshot_json(os);
  return os.str();
}

}  // namespace

TEST(Determinism, IdenticalRunsProduceIdenticalSnapshots) {
  const std::string a = watched_run_snapshot();
  const std::string b = watched_run_snapshot();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"watch-v1\""), std::string::npos);
}

// --- feedback paths ---------------------------------------------------------

namespace {

/// Teach an attached watch a published 4x penalty on every wire touching
/// `bad_node` of a `nodes`-node machine (synthetic samples: the oracle only
/// sees per-message costs, so taught and measured state are equivalent).
void teach_degraded_node(Watch& w, int nodes, int bad_node) {
  const std::uint64_t bytes = 8192;
  for (int s = 0; s < nodes; ++s)
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      const double pb = (s == bad_node || d == bad_node) ? 4.0 : 1.0;
      for (int i = 0; i < 3; ++i) feed(w, s, d, bytes, pb);
    }
  w.publish();
}

}  // namespace

TEST(Feedback, SchedPlacementRoutesAroundDegradedNodeUnderLiveCosts) {
  const auto run_one = [](bool live_costs) {
    stencil::watch::Watch live;
    Cluster cluster(topo::summit(), 3, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    cluster.set_watch(&live);
    teach_degraded_node(live, 3, /*bad_node=*/0);
    sched::Scheduler::Options opt;
    opt.place = sched::PlacePolicy::kNodeAware;
    opt.live_costs = live_costs;
    sched::Scheduler scheduler(cluster, opt);
    sched::JobSpec s;
    s.name = "probe";
    s.user = "test";
    s.gpus = 6;  // exactly one node of the three
    s.domain = {48, 48, 48};
    s.radius = 1;
    s.quantities = 1;
    s.iterations = 2;
    scheduler.submit(s);
    const sched::RunReport rep = scheduler.run();
    EXPECT_EQ(rep.tenants.size(), 1u);
    return rep.tenants.front().nodes;
  };
  const std::vector<int> static_nodes = run_one(false);
  const std::vector<int> live_nodes = run_one(true);
  // Static node-aware ties break by node id and land on the degraded node 0;
  // live costs read the published 4x factor and route around it.
  ASSERT_EQ(static_nodes.size(), 1u);
  ASSERT_EQ(live_nodes.size(), 1u);
  EXPECT_EQ(static_nodes.front(), 0);
  EXPECT_NE(live_nodes.front(), 0);
}

TEST(Feedback, RecoverReplaceAvoidsDegradedNodeUnderLiveCosts) {
  const auto adopters = [](bool live_costs) {
    stencil::watch::Watch live;
    Cluster cluster(topo::summit(), 3, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    cluster.set_watch(&live);
    teach_degraded_node(live, 3, /*bad_node=*/0);
    std::vector<int> new_gpus;
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {48, 48, 48});
      dd.set_radius(1);
      dd.add_data<float>("q0");
      dd.realize();
      dd.set_live_costs(live_costs);
      if (ctx.rank() != 0) return;
      // Rank 17 (the last rank of node 2) dies; every survivor computes the
      // same greedy adoption, so rank 0's answer is the placement.
      for (const auto& rh : dd.recover_replace({17})) new_gpus.push_back(rh.new_gpu);
    });
    return new_gpus;
  };
  const std::vector<int> static_gpus = adopters(false);
  const std::vector<int> live_gpus = adopters(true);
  ASSERT_FALSE(static_gpus.empty());
  ASSERT_FALSE(live_gpus.empty());
  // 6 GPUs per node on this shape: node = gpu / 6. The static tie-break
  // adopts onto the lowest GPU ids (node 0); the live bias makes node 0's
  // GPUs look loaded and pushes the orphans onto healthy nodes.
  bool static_hits_bad = false;
  for (const int g : static_gpus) static_hits_bad = static_hits_bad || g / 6 == 0;
  EXPECT_TRUE(static_hits_bad);
  for (const int g : live_gpus) {
    EXPECT_NE(g / 6, 0) << "orphan adopted onto degraded node 0 (gpu " << g << ")";
  }
}
