#include <gtest/gtest.h>

#include <tuple>

#include "core/partition.h"

using stencil::Dim3;
using stencil::FlatPartition;
using stencil::HierarchicalPartition;

TEST(PrimeFactors, Basic) {
  EXPECT_EQ(stencil::prime_factors_desc(12), (std::vector<std::int64_t>{3, 2, 2}));
  EXPECT_EQ(stencil::prime_factors_desc(1), (std::vector<std::int64_t>{}));
  EXPECT_EQ(stencil::prime_factors_desc(7), (std::vector<std::int64_t>{7}));
  EXPECT_EQ(stencil::prime_factors_desc(60), (std::vector<std::int64_t>{5, 3, 2, 2}));
  EXPECT_THROW(stencil::prime_factors_desc(0), std::invalid_argument);
}

TEST(PartitionExtent, PaperFig4NodeLevel) {
  // 4 x 24 x 2 over 12 nodes: split y by 3, y by 2, x by 2 => [2, 6, 1].
  const Dim3 q = stencil::partition_extent({4, 24, 2}, 12);
  EXPECT_EQ(q, (Dim3{2, 6, 1}));
}

TEST(PartitionExtent, PaperFig4GpuLevel) {
  // Node block is 2 x 4 x 2; 4 GPUs: split y by 2, then x by 2 => [2, 2, 1].
  const Dim3 q = stencil::partition_extent({2, 4, 2}, 4);
  EXPECT_EQ(q, (Dim3{2, 2, 1}));
}

TEST(PartitionExtent, CubeSplitsEvenly) {
  EXPECT_EQ(stencil::partition_extent({512, 512, 512}, 8), (Dim3{2, 2, 2}));
  EXPECT_EQ(stencil::partition_extent({512, 512, 512}, 27), (Dim3{3, 3, 3}));
  EXPECT_EQ(stencil::partition_extent({100, 100, 100}, 1), (Dim3{1, 1, 1}));
}

TEST(PartitionExtent, SummitSixGpuSplit) {
  // 6 GPUs on a cube: 3 then 2 -> {..} with product 6, near-cubical blocks.
  const Dim3 q = stencil::partition_extent({1440, 1452, 700}, 6);
  EXPECT_EQ(q.volume(), 6);
  // Paper Fig. 11: 1440x1452x700 into 6 subdomains of 720x484x700.
  const Dim3 sz = stencil::subdomain_size({1440, 1452, 700}, q, {0, 0, 0});
  EXPECT_EQ(sz, (Dim3{720, 484, 700}));
}

TEST(SubdomainSize, BalancedRemainder) {
  // 10 into 3 parts: 4, 3, 3.
  const Dim3 dom{10, 1, 1};
  const Dim3 ext{3, 1, 1};
  EXPECT_EQ(stencil::subdomain_size(dom, ext, {0, 0, 0}).x, 4);
  EXPECT_EQ(stencil::subdomain_size(dom, ext, {1, 0, 0}).x, 3);
  EXPECT_EQ(stencil::subdomain_size(dom, ext, {2, 0, 0}).x, 3);
  EXPECT_EQ(stencil::subdomain_origin(dom, ext, {0, 0, 0}).x, 0);
  EXPECT_EQ(stencil::subdomain_origin(dom, ext, {1, 0, 0}).x, 4);
  EXPECT_EQ(stencil::subdomain_origin(dom, ext, {2, 0, 0}).x, 7);
}

TEST(SubdomainSize, OutOfRangeRejected) {
  EXPECT_THROW(stencil::subdomain_size({8, 8, 8}, {2, 2, 2}, {2, 0, 0}), std::out_of_range);
  EXPECT_THROW(stencil::subdomain_origin({8, 8, 8}, {2, 2, 2}, {0, -1, 0}), std::out_of_range);
}

TEST(HaloVolume, FacesEdgesCorners) {
  const Dim3 sz{10, 20, 30};
  EXPECT_EQ(stencil::halo_volume(sz, {1, 0, 0}, 2), 2 * 20 * 30);   // face
  EXPECT_EQ(stencil::halo_volume(sz, {1, 1, 0}, 2), 2 * 2 * 30);    // edge
  EXPECT_EQ(stencil::halo_volume(sz, {1, -1, 1}, 2), 2 * 2 * 2);    // corner
  EXPECT_EQ(stencil::halo_volume(sz, {0, 0, 0}, 2), sz.volume());   // degenerate
}

TEST(HaloVolume, SentTotalMatchesClosedForm) {
  // 26-neighborhood: 6 faces + 12 edges + 8 corners.
  const Dim3 s{16, 16, 16};
  const int r = 1;
  const std::int64_t faces = 2 * (s.x * s.y + s.y * s.z + s.x * s.z) * r;
  const std::int64_t edges = 4 * (s.x + s.y + s.z) * r * r;
  const std::int64_t corners = 8 * r * r * r;
  EXPECT_EQ(stencil::sent_halo_volume(s, r), faces + edges + corners);
}

namespace {

// Total grid points exchanged across subdomain boundaries for a 2D domain
// (z = 1), counting x/y directions only. `periodic` controls whether
// boundary subdomains wrap around (self-exchanges move no data off-GPU
// either way and are excluded).
std::int64_t fig3_exchanged(Dim3 dom, Dim3 ext, int r, bool periodic) {
  std::int64_t sum = 0;
  for (std::int64_t i = 0; i < ext.volume(); ++i) {
    const Dim3 idx = Dim3::from_linear(i, ext);
    const Dim3 sz = stencil::subdomain_size(dom, ext, idx);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const Dim3 raw = idx + Dim3{dx, dy, 0};
        if (!periodic && !raw.inside(ext)) continue;
        const Dim3 nbr = raw.wrap(ext);
        if (nbr == idx) continue;
        sum += stencil::halo_volume(sz, {dx, dy, 0}, r);
      }
    }
  }
  return sum;
}

}  // namespace

TEST(Fig3, SurfaceToVolumeOrdering) {
  // The paper's Fig. 3: for a fixed part count, the more cubical partition
  // exchanges less. With periodic wrap a 2-wide split sends the same total
  // as 4x1 in 2D (each face is simply sent twice to the same neighbor), so
  // the strict ordering appears at 9 parts and without wrap.
  const Dim3 dom{36, 36, 1};
  const int r = 1;
  EXPECT_LE(fig3_exchanged(dom, {2, 2, 1}, r, true), fig3_exchanged(dom, {4, 1, 1}, r, true));
  EXPECT_LT(fig3_exchanged(dom, {3, 3, 1}, r, true), fig3_exchanged(dom, {9, 1, 1}, r, true));
  EXPECT_LT(fig3_exchanged(dom, {2, 2, 1}, r, false), fig3_exchanged(dom, {4, 1, 1}, r, false));
  EXPECT_LT(fig3_exchanged(dom, {3, 3, 1}, r, false), fig3_exchanged(dom, {9, 1, 1}, r, false));
}

TEST(Hierarchical, IndexComposition) {
  const HierarchicalPartition hp({4, 24, 2}, 12, 4);
  EXPECT_EQ(hp.node_extent(), (Dim3{2, 6, 1}));
  EXPECT_EQ(hp.gpu_extent(), (Dim3{2, 2, 1}));
  EXPECT_EQ(hp.global_extent(), (Dim3{4, 12, 1}));
  const Dim3 g = hp.global_index({1, 2, 0}, {0, 1, 0});
  EXPECT_EQ(g, (Dim3{2, 5, 0}));
  const auto [node, gpu] = hp.split_index(g);
  EXPECT_EQ(node, (Dim3{1, 2, 0}));
  EXPECT_EQ(gpu, (Dim3{0, 1, 0}));
}

TEST(Hierarchical, HierarchicalBeatsFlatOnInternodeVolume) {
  // The hierarchical split minimizes the slow inter-node communication
  // (§III-A), possibly at the cost of total volume.
  const Dim3 dom{1440, 1440, 720};
  const HierarchicalPartition hp(dom, 16, 6);
  const FlatPartition fp(dom, 16, 6);
  EXPECT_LE(hp.internode_exchange_volume(2), fp.internode_exchange_volume(2));
}

// Property sweep: subdomains exactly tile the domain for arbitrary shapes
// and GPU counts, and sizes are within one point of each other per dim.
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(PartitionProperty, TilesExactlyAndBalanced) {
  const auto [dx, dy, dz, nodes, gpus] = GetParam();
  const Dim3 dom{dx, dy, dz};
  const HierarchicalPartition hp(dom, nodes, gpus);
  const Dim3 ext = hp.global_extent();
  ASSERT_EQ(ext.volume(), static_cast<std::int64_t>(nodes) * gpus);

  std::int64_t total = 0;
  Dim3 min_sz{1 << 30, 1 << 30, 1 << 30}, max_sz{0, 0, 0};
  for (std::int64_t i = 0; i < ext.volume(); ++i) {
    const Dim3 idx = Dim3::from_linear(i, ext);
    const Dim3 sz = hp.subdomain_size(idx);
    EXPECT_GE(sz.x, 1);
    EXPECT_GE(sz.y, 1);
    EXPECT_GE(sz.z, 1);
    total += sz.volume();
    min_sz = {std::min(min_sz.x, sz.x), std::min(min_sz.y, sz.y), std::min(min_sz.z, sz.z)};
    max_sz = {std::max(max_sz.x, sz.x), std::max(max_sz.y, sz.y), std::max(max_sz.z, sz.z)};
    // Origin + size of the last subdomain per dim reaches the domain edge.
    const Dim3 org = hp.subdomain_origin(idx);
    EXPECT_LE(org.x + sz.x, dom.x);
    EXPECT_LE(org.y + sz.y, dom.y);
    EXPECT_LE(org.z + sz.z, dom.z);
  }
  EXPECT_EQ(total, dom.volume());  // exact tiling
  EXPECT_LE(max_sz.x - min_sz.x, 1);
  EXPECT_LE(max_sz.y - min_sz.y, 1);
  EXPECT_LE(max_sz.z - min_sz.z, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionProperty,
    ::testing::Values(std::make_tuple(64, 64, 64, 1, 6), std::make_tuple(64, 64, 64, 8, 6),
                      std::make_tuple(100, 37, 22, 3, 4), std::make_tuple(7, 200, 11, 12, 4),
                      std::make_tuple(1440, 1452, 700, 1, 6), std::make_tuple(33, 33, 33, 2, 2),
                      std::make_tuple(4, 24, 2, 12, 4), std::make_tuple(17, 1, 1, 1, 1),
                      std::make_tuple(128, 128, 1, 4, 6), std::make_tuple(75, 75, 75, 27, 1)));

TEST(Hierarchical, RejectsBadCounts) {
  EXPECT_THROW(HierarchicalPartition({8, 8, 8}, 0, 4), std::invalid_argument);
  EXPECT_THROW(HierarchicalPartition({8, 8, 8}, 4, 0), std::invalid_argument);
  EXPECT_THROW(stencil::partition_extent({0, 8, 8}, 4), std::invalid_argument);
}
