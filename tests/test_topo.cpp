#include <gtest/gtest.h>

#include "topo/archetype.h"
#include "topo/machine.h"

namespace topo = stencil::topo;
namespace sim = stencil::sim;

TEST(Archetype, SummitShape) {
  const auto a = topo::summit();
  EXPECT_EQ(a.sockets, 2);
  EXPECT_EQ(a.gpus_per_socket, 3);
  EXPECT_EQ(a.gpus_per_node(), 6);
  EXPECT_TRUE(a.cuda_aware_mpi);
  EXPECT_TRUE(a.peer_within_socket);
  EXPECT_FALSE(a.peer_across_socket);
}

TEST(Archetype, SummitLinkTypes) {
  const auto a = topo::summit();
  EXPECT_EQ(a.gpu_link(0, 0), topo::LinkType::kSame);
  EXPECT_EQ(a.gpu_link(0, 1), topo::LinkType::kNVLink);  // same triad
  EXPECT_EQ(a.gpu_link(0, 2), topo::LinkType::kNVLink);
  EXPECT_EQ(a.gpu_link(0, 3), topo::LinkType::kXBus);  // across sockets
  EXPECT_EQ(a.gpu_link(2, 5), topo::LinkType::kXBus);
  EXPECT_EQ(a.gpu_link(4, 5), topo::LinkType::kNVLink);
}

TEST(Archetype, SummitBandwidthMatrixMatchesFig10) {
  const auto a = topo::summit();
  // In-triad NVLink: 50 GiB/s; cross-socket bottlenecked by CPU links/X-Bus.
  EXPECT_DOUBLE_EQ(a.theoretical_gpu_bw(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(a.theoretical_gpu_bw(3, 5), 50.0);
  EXPECT_LE(a.theoretical_gpu_bw(0, 3), 50.0);
  EXPECT_GT(a.theoretical_gpu_bw(0, 3), 0.0);
  // Placement cares that cross-socket < in-triad:
  EXPECT_GT(a.theoretical_gpu_bw(0, 1), a.theoretical_gpu_bw(0, 3) - 1e-9);
}

TEST(Archetype, PeerCapability) {
  const auto a = topo::summit();
  EXPECT_TRUE(a.peer_capable(0, 1));
  EXPECT_TRUE(a.peer_capable(1, 2));
  EXPECT_FALSE(a.peer_capable(0, 3));  // X-Bus: no P2P on Summit
  EXPECT_TRUE(a.peer_capable(2, 2));
  const auto d = topo::dgx_like(4);
  EXPECT_TRUE(d.peer_capable(0, 3));
  const auto p = topo::pcie_box(2);
  EXPECT_FALSE(p.peer_capable(0, 1));
}

TEST(Archetype, AchievedBandwidthBelowTheoretical) {
  const auto a = topo::summit();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_LE(a.achieved_gpu_bw(i, j), a.theoretical_gpu_bw(i, j) + 1e-9) << i << "," << j;
      EXPECT_GT(a.achieved_gpu_bw(i, j), 0.0);
    }
  }
  // Non-peer (cross-socket) pairs lose the most: three store-and-forward
  // hops instead of one streaming link.
  EXPECT_LT(a.achieved_gpu_bw(0, 3), 0.5 * a.achieved_gpu_bw(0, 1));
}

TEST(Archetype, LinkIndexValidation) {
  const auto a = topo::summit();
  EXPECT_THROW(a.gpu_link(0, 6), std::out_of_range);
  EXPECT_THROW(a.gpu_link(-1, 0), std::out_of_range);
}

TEST(Machine, GlobalGpuNumbering) {
  topo::Machine m(topo::summit(), 4);
  EXPECT_EQ(m.total_gpus(), 24);
  EXPECT_EQ(m.node_of(13), 2);
  EXPECT_EQ(m.local_of(13), 1);
  EXPECT_EQ(m.global_gpu(2, 1), 13);
  EXPECT_TRUE(m.peer_capable(0, 1));
  EXPECT_FALSE(m.peer_capable(0, 3));   // cross-socket
  EXPECT_FALSE(m.peer_capable(0, 6));   // cross-node
}

TEST(Machine, RejectsBadConstruction) {
  EXPECT_THROW(topo::Machine(topo::summit(), 0), std::invalid_argument);
  topo::NodeArchetype empty;
  EXPECT_THROW(topo::Machine(empty, 1), std::invalid_argument);
}

TEST(Machine, PeerCopyFasterThanCrossSocket) {
  topo::Machine m(topo::summit(), 1);
  const std::uint64_t mb64 = 64ull << 20;
  const auto peer = m.schedule_d2d(0, 1, mb64, 0);
  const auto cross = m.schedule_d2d(0, 3, mb64, 0);
  EXPECT_LT(peer.duration(), cross.duration());
}

TEST(Machine, PeerDisabledFallsBackToStagedPath) {
  topo::Machine m(topo::summit(), 1);
  const std::uint64_t mb64 = 64ull << 20;
  const auto direct = m.schedule_d2d(0, 1, mb64, 0, /*use_peer=*/true);
  m.reset_resources();
  const auto staged = m.schedule_d2d(0, 1, mb64, 0, /*use_peer=*/false);
  EXPECT_LT(direct.duration(), staged.duration());
}

TEST(Machine, D2dRequiresSameNode) {
  topo::Machine m(topo::summit(), 2);
  EXPECT_THROW(m.schedule_d2d(0, 6, 1024, 0), std::logic_error);
  EXPECT_THROW(m.schedule_internode(0, 0, 1024, 0), std::logic_error);
}

TEST(Machine, InternodeCutThrough) {
  topo::Machine m(topo::summit(), 2);
  const std::uint64_t bytes = 1ull << 30;  // 1 GiB
  const auto span = m.schedule_internode(0, 1, bytes, 0);
  const double eff_bw = m.arch().bw_nic * m.arch().eff_nic;
  const sim::Duration wire = sim::transfer_time(bytes, eff_bw);
  // Cut-through: close to one wire time, certainly less than two.
  EXPECT_GE(span.duration(), wire);
  EXPECT_LT(span.duration(), 2 * wire);
}

TEST(Machine, NicContentionSerializes) {
  topo::Machine m(topo::summit(), 3);
  const std::uint64_t bytes = 1ull << 28;
  // Two messages leaving node 0 at once contend on its NIC...
  const auto first = m.schedule_internode(0, 1, bytes, 0);
  const auto second = m.schedule_internode(0, 2, bytes, 0);
  EXPECT_GE(second.start, first.start + (first.end - first.start) / 2);
  m.reset_resources();
  // ...but messages leaving two different nodes overlap fully.
  const auto a = m.schedule_internode(0, 2, bytes, 0);
  const auto b = m.schedule_internode(1, 2, bytes, 0);
  (void)a;
  EXPECT_GT(b.end, a.end);  // they do share the destination NIC
  m.reset_resources();
  const auto c = m.schedule_internode(0, 1, bytes, 0);
  const auto d = m.schedule_internode(2, 1, bytes, 0);
  EXPECT_EQ(c.start, d.start);  // distinct source NICs start together
}

TEST(Machine, KernelQueueSerializesPerGpu) {
  topo::Machine m(topo::summit(), 1);
  const auto k1 = m.schedule_kernel(0, 1 << 20, 0);
  const auto k2 = m.schedule_kernel(0, 1 << 20, 0);
  EXPECT_GE(k2.start, k1.end);
  const auto other = m.schedule_kernel(1, 1 << 20, 0);
  EXPECT_LT(other.start, k2.end);  // different GPU: no serialization
}

TEST(Machine, HostLinkDirectionsIndependent) {
  topo::Machine m(topo::summit(), 1);
  const std::uint64_t bytes = 1ull << 28;
  const auto down = m.schedule_h2d(0, bytes, 0);
  const auto up = m.schedule_d2h(0, bytes, 0);
  // Full-duplex: both directions stream concurrently.
  EXPECT_EQ(down.start, up.start);
}

TEST(Machine, ResetResources) {
  topo::Machine m(topo::summit(), 1);
  m.schedule_kernel(0, 1 << 30, 0);
  EXPECT_GT(m.kernel_queue(0).busy_until(), 0);
  m.reset_resources();
  EXPECT_EQ(m.kernel_queue(0).busy_until(), 0);
}

TEST(Machine, SelfCopyUsesDeviceMemory) {
  topo::Machine m(topo::summit(), 1);
  const auto self = m.schedule_d2d(2, 2, 1ull << 30, 0);
  const auto peer = m.schedule_d2d(0, 1, 1ull << 30, 0);
  EXPECT_LT(self.duration(), peer.duration());  // HBM is far faster than NVLink
}
