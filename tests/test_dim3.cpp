#include <gtest/gtest.h>

#include <sstream>

#include "core/dim3.h"

using stencil::Dim3;

TEST(Dim3, Arithmetic) {
  const Dim3 a{1, 2, 3}, b{10, 20, 30};
  EXPECT_EQ(a + b, (Dim3{11, 22, 33}));
  EXPECT_EQ(b - a, (Dim3{9, 18, 27}));
  EXPECT_EQ(a * b, (Dim3{10, 40, 90}));
  EXPECT_EQ(a.volume(), 6);
  EXPECT_EQ((Dim3{0, 5, 5}).volume(), 0);
}

TEST(Dim3, WrapIsAlwaysNonNegative) {
  const Dim3 ext{4, 3, 2};
  EXPECT_EQ((Dim3{-1, -1, -1}).wrap(ext), (Dim3{3, 2, 1}));
  EXPECT_EQ((Dim3{4, 3, 2}).wrap(ext), (Dim3{0, 0, 0}));
  EXPECT_EQ((Dim3{-5, 7, 2}).wrap(ext), (Dim3{3, 1, 0}));
  EXPECT_EQ((Dim3{2, 1, 0}).wrap(ext), (Dim3{2, 1, 0}));  // identity inside
}

TEST(Dim3, Inside) {
  const Dim3 ext{4, 3, 2};
  EXPECT_TRUE((Dim3{0, 0, 0}).inside(ext));
  EXPECT_TRUE((Dim3{3, 2, 1}).inside(ext));
  EXPECT_FALSE((Dim3{4, 0, 0}).inside(ext));
  EXPECT_FALSE((Dim3{0, -1, 0}).inside(ext));
  EXPECT_FALSE((Dim3{0, 0, 2}).inside(ext));
}

TEST(Dim3, LinearizeRoundTrip) {
  const Dim3 ext{5, 7, 3};
  for (std::int64_t i = 0; i < ext.volume(); ++i) {
    const Dim3 idx = Dim3::from_linear(i, ext);
    EXPECT_TRUE(idx.inside(ext));
    EXPECT_EQ(idx.linearize(ext), i);
  }
}

TEST(Dim3, LinearizeXFastest) {
  const Dim3 ext{4, 3, 2};
  EXPECT_EQ((Dim3{1, 0, 0}).linearize(ext), 1);
  EXPECT_EQ((Dim3{0, 1, 0}).linearize(ext), 4);
  EXPECT_EQ((Dim3{0, 0, 1}).linearize(ext), 12);
}

TEST(Dim3, StringForm) {
  EXPECT_EQ((Dim3{1, -2, 3}).str(), "[1,-2,3]");
  std::ostringstream os;
  os << Dim3{7, 8, 9};
  EXPECT_EQ(os.str(), "[7,8,9]");
}
