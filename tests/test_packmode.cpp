#include <gtest/gtest.h>

#include <sstream>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/machine.h"
#include "trace/recorder.h"
#include "vgpu/probe.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::MethodFlags;
using stencil::PackMode;
using stencil::RankCtx;

TEST(StridedModel, EfficiencyMonotoneInRowLength) {
  stencil::topo::Machine m(stencil::topo::summit(), 1);
  EXPECT_LT(m.strided_efficiency(12), 0.1);      // radius-3 float x-face rows
  EXPECT_GT(m.strided_efficiency(4096), 0.9);    // long z-face rows
  EXPECT_LE(m.strided_efficiency(64), m.strided_efficiency(128));
  EXPECT_DOUBLE_EQ(m.strided_efficiency(0), 1.0);  // degenerate: treated dense
}

TEST(StridedModel, StridedSlowerThanDenseForShortRows) {
  stencil::topo::Machine m(stencil::topo::summit(), 1);
  const std::uint64_t bytes = 16ull << 20;
  const auto dense = m.schedule_d2d(0, 1, bytes, 0);
  m.reset_resources();
  const auto strided = m.schedule_d2d_strided(0, 1, bytes, /*row_bytes=*/16, 0);
  EXPECT_GT(strided.duration(), 5 * dense.duration());
}

namespace {

float coord_value(Dim3 g) { return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z); }

void run_correctness(PackMode mode) {
  Cluster cluster(stencil::topo::summit(), 1, 1);  // 1 rank: everything is PEER
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 18, 12});
    dd.set_radius(2);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(MethodFlags::kAll);
    dd.set_pack_mode(mode);
    dd.realize();

    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      for (std::size_t q = 0; q < 2; ++q) {
        auto v = ld.view<float>(q);
        const Dim3 o = ld.origin();
        for (std::int64_t z = 0; z < ld.size().z; ++z)
          for (std::int64_t y = 0; y < ld.size().y; ++y)
            for (std::int64_t x = 0; x < ld.size().x; ++x)
              v(x, y, z) = coord_value({o.x + x, o.y + y, o.z + z}) + 4.0e6f * static_cast<float>(q);
      }
    });
    dd.exchange();
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      for (std::size_t q = 0; q < 2; ++q) {
        auto v = ld.view<float>(q);
        for (std::int64_t z = -2; z < s.z + 2; ++z)
          for (std::int64_t y = -2; y < s.y + 2; ++y)
            for (std::int64_t x = -2; x < s.x + 2; ++x) {
              if (Dim3{x, y, z}.inside(s)) continue;
              const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(dd.domain());
              ASSERT_EQ(v(x, y, z), coord_value(g) + 4.0e6f * static_cast<float>(q))
                  << to_string(mode) << " halo [" << x << "," << y << "," << z << "]";
            }
      }
    });
  });
}

double time_with_mode(PackMode mode) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  double t = 0.0;
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {720, 720, 720});
    dd.set_radius(3);
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kAll);
    dd.set_pack_mode(mode);
    dd.realize();
    ctx.comm.barrier();
    const double t0 = ctx.comm.wtime();
    dd.exchange();
    t = ctx.comm.wtime() - t0;
  });
  return t;
}

}  // namespace

TEST(PackMode, Memcpy3dHalosBitExact) { run_correctness(PackMode::kMemcpy3D); }
TEST(PackMode, AutoHalosBitExact) { run_correctness(PackMode::kAuto); }

TEST(PackMode, AutoNeverWorseThanEither) {
  const double kern = time_with_mode(PackMode::kKernel);
  const double m3d = time_with_mode(PackMode::kMemcpy3D);
  const double auto_t = time_with_mode(PackMode::kAuto);
  EXPECT_LE(auto_t, kern * 1.02);
  EXPECT_LE(auto_t, m3d * 1.02);
}

TEST(ZeroCopy, StagedHalosBitExact) {
  Cluster cluster(stencil::topo::summit(), 2, 6);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {22, 18, 14});
    dd.set_radius(1);
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kStaged);
    dd.set_staged_zero_copy(true);
    dd.realize();
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = coord_value({o.x + x, o.y + y, o.z + z});
    });
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      for (std::int64_t z = -1; z < s.z + 1; ++z)
        for (std::int64_t y = -1; y < s.y + 1; ++y)
          for (std::int64_t x = -1; x < s.x + 1; ++x) {
            if (Dim3{x, y, z}.inside(s)) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(dd.domain());
            ASSERT_EQ(v(x, y, z), coord_value(g));
          }
    });
  });
}

TEST(ZeroCopy, FewerOpsOnStagedPath) {
  // Zero-copy replaces pack + D2H with one launch: fewer issued ops.
  auto ops_with = [](bool zc) {
    Cluster cluster(stencil::topo::summit(), 1, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    std::uint64_t ops = 0;
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {240, 240, 240});
      dd.add_data<float>("q");
      dd.set_methods(MethodFlags::kStaged);
      dd.set_staged_zero_copy(zc);
      dd.realize();
      ctx.comm.barrier();
      const std::uint64_t before = ctx.rt.ops_issued();
      dd.exchange();
      ctx.comm.barrier();
      if (ctx.rank() == 0) ops = ctx.rt.ops_issued() - before;
    });
    return ops;
  };
  EXPECT_LT(ops_with(true), ops_with(false));
}

TEST(Probe, MatchesAnalyticAchievedBandwidth) {
  const auto arch = stencil::topo::summit();
  const auto probe = stencil::vgpu::probe_gpu_bandwidth(arch);
  ASSERT_EQ(probe.gpus, 6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i == j) {
        EXPECT_DOUBLE_EQ(probe.at(i, j), 0.0);
        continue;
      }
      // Within 10% of the analytic figure (latency terms account for the gap).
      const double analytic = arch.achieved_gpu_bw(i, j);
      EXPECT_NEAR(probe.at(i, j) / analytic, 1.0, 0.1) << i << "->" << j;
    }
  }
  // The probe preserves the topology ordering: in-triad beats cross-socket.
  EXPECT_GT(probe.at(0, 1), probe.at(0, 3));
}

TEST(ChromeTrace, EmitsValidShape) {
  stencil::trace::Recorder rec;
  rec.record("gpu0.kernel", "pack \"+x\"", 1000, 2000);
  rec.record("rank0.cpu", "issue", 0, 500);
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_EQ(s.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("\\\"+x\\\""), std::string::npos);  // label quoting escaped
  EXPECT_NE(s.find("\"ts\":1,\"dur\":1"), std::string::npos);  // microseconds
  EXPECT_EQ(s.back(), '\n');
}

TEST(ChromeTrace, EmptyRecorder) {
  stencil::trace::Recorder rec;
  std::ostringstream os;
  rec.write_chrome_trace(os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}\n");
}
