#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "plan/plan.h"
#include "simtime/engine.h"
#include "telemetry/critical_path.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "topo/archetype.h"
#include "trace/recorder.h"

using namespace stencil;
namespace telemetry = stencil::telemetry;
using telemetry::CriticalPath;
using telemetry::EventKind;
using telemetry::FlightRecorder;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::Telemetry;
using trace::OpRecord;

namespace {

/// Minimal recursive-descent JSON validator: enough to reject any malformed
/// exporter output (unbalanced braces, bad escapes, trailing junk) without
/// needing a JSON library.
struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  explicit JsonParser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  bool string_() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (static_cast<unsigned char>(s[i]) < 0x20) return false;  // raw control char
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    bool digits = false;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || s[i] == '+' || s[i] == '-')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(s[i]));
      ++i;
    }
    return digits && i > start;
  }
  bool object() {
    ++i;  // '{'
    ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    for (;;) {
      ws();
      if (!string_()) return false;
      ws();
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++i;  // '['
    ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
};

bool json_valid(const std::string& text) {
  JsonParser p(text);
  if (!p.value()) return false;
  p.ws();
  return p.i == text.size();
}

OpRecord span(const char* lane, const char* label, sim::Time start, sim::Time end) {
  return OpRecord{lane, label, start, end};
}

}  // namespace

// --- metrics -----------------------------------------------------------------

TEST(Metrics, CounterAddsAndUntouchedReadsZero) {
  MetricsRegistry reg;
  reg.counter("a_total").add();
  reg.counter("a_total").add(41);
  EXPECT_EQ(reg.counter_value("a_total"), 42u);
  EXPECT_EQ(reg.counter_value("never_touched"), 0u);
  EXPECT_EQ(reg.counters().count("never_touched"), 0u);  // did not intern
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(-3.0);
  EXPECT_DOUBLE_EQ(reg.gauges().at("g").value, -3.0);
}

TEST(Metrics, HistogramBucketIndexKnownValues) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 0);
  EXPECT_EQ(Histogram::bucket_index(2), 1);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 2);
  EXPECT_EQ(Histogram::bucket_index(5), 3);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 10);
  EXPECT_EQ(Histogram::bucket_index(1025), 11);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()), 63);
}

TEST(Metrics, HistogramBucketBounds) {
  EXPECT_EQ(Histogram::bucket_bound(0), 1u);
  EXPECT_EQ(Histogram::bucket_bound(1), 2u);
  EXPECT_EQ(Histogram::bucket_bound(10), 1024u);
  EXPECT_EQ(Histogram::bucket_bound(63), std::numeric_limits<std::uint64_t>::max());
}

TEST(Metrics, HistogramStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.used_buckets(), 0);
  h.observe(0);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1003u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 1003.0 / 3.0, 1e-9);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.used_buckets(), 11);
}

TEST(Metrics, HistogramMerge) {
  Histogram a, b;
  a.observe(2);
  b.observe(7);
  b.observe(1);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 10u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 7u);
  Histogram empty;
  a.merge(empty);  // merging an empty histogram must not disturb min/max
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1u);
}

TEST(Metrics, RegistryMergeFoldsAllThreeKinds) {
  MetricsRegistry a, b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.counter("only_b").add(5);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h").observe(4);
  b.histogram("h").observe(100);
  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only_b"), 5u);
  EXPECT_DOUBLE_EQ(a.gauges().at("g").value, 9.0);
  EXPECT_EQ(a.histograms().at("h").count(), 2u);
}

TEST(Metrics, IterationOrderIsLexicographic) {
  MetricsRegistry reg;
  reg.counter("zebra").add();
  reg.counter("alpha").add();
  reg.counter("mid").add();
  std::vector<std::string> names;
  for (const auto& [name, c] : reg.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(Metrics, SplitMetricNameHandlesLabels) {
  auto [base, labels] = telemetry::split_metric_name("exchange_bytes_total{method=\"staged\"}");
  EXPECT_EQ(base, "exchange_bytes_total");
  EXPECT_EQ(labels, "method=\"staged\"");
  auto [plain, none] = telemetry::split_metric_name("exchanges_total");
  EXPECT_EQ(plain, "exchanges_total");
  EXPECT_EQ(none, "");
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, RingEvictsOldest) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i)
    fr.log(EventKind::kNote, i * sim::kMicrosecond, "lane", "e" + std::to_string(i));
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.total_logged(), 10u);
  const auto tail = fr.tail(4);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().detail, "e6");  // oldest surviving
  EXPECT_EQ(tail.back().detail, "e9");
}

TEST(FlightRecorderTest, TailClampsAndOrdersOldestFirst) {
  FlightRecorder fr(8);
  fr.log(EventKind::kNote, 1, "l", "first");
  fr.log(EventKind::kNote, 2, "l", "second");
  EXPECT_EQ(fr.tail(100).size(), 2u);
  const auto t = fr.tail(1);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].detail, "second");
}

TEST(FlightRecorderTest, StampsCurrentExchangeSeq) {
  FlightRecorder fr;
  fr.log(EventKind::kNote, 0, "l", "before");
  fr.set_exchange_seq(7);
  fr.log(EventKind::kNote, 1, "l", "after");
  const auto t = fr.tail(2);
  EXPECT_EQ(t[0].exchange_seq, 0u);
  EXPECT_EQ(t[1].exchange_seq, 7u);
}

TEST(FlightRecorderTest, DumpTailFormat) {
  FlightRecorder fr(2);
  std::ostringstream empty;
  fr.dump_tail(empty, 4);
  EXPECT_NE(empty.str().find("flight recorder empty"), std::string::npos);

  fr.set_exchange_seq(3);
  fr.log(EventKind::kGpuOp, 1250 * sim::kMicrosecond, "gpu0.d2h", "pack +x", 4096);
  fr.log(EventKind::kMpiMatch, 1300 * sim::kMicrosecond, "mpi.r0->r1", "tag=42", 512);
  fr.log(EventKind::kDemote, 1400 * sim::kMicrosecond, "fault", "tag=9 peer->staged");
  std::ostringstream os;
  fr.dump_tail(os, 8);
  const std::string s = os.str();
  EXPECT_NE(s.find("[seq 3]"), std::string::npos) << s;
  EXPECT_NE(s.find("mpi-match"), std::string::npos) << s;
  EXPECT_NE(s.find("demote"), std::string::npos) << s;
  EXPECT_NE(s.find("tag=9 peer->staged"), std::string::npos) << s;
  EXPECT_NE(s.find("earlier event(s)"), std::string::npos) << s;  // one was evicted
  EXPECT_EQ(s.find("pack +x"), std::string::npos) << s;           // ... that one
}

TEST(FlightRecorderTest, SustainedChurnKeepsTailOrderedAndBounded) {
  // Incident-style churn: many exchanges, several events per exchange, far
  // more than the ring holds. The ring must stay bounded, evict strictly
  // oldest-first, and tail()/dump_tail() must report the survivors in log
  // order with the evicted count right.
  constexpr std::size_t kCap = 8;
  FlightRecorder fr(kCap);
  std::uint64_t logged = 0;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    fr.set_exchange_seq(seq);
    for (int e = 0; e < 3; ++e) {
      fr.log(e == 2 ? EventKind::kDemote : EventKind::kMpiMatch,
             static_cast<sim::Time>(logged) * sim::kMicrosecond, "mpi.r0->r1",
             "e" + std::to_string(logged), 64);
      ++logged;
    }
  }
  EXPECT_EQ(fr.size(), kCap);
  EXPECT_EQ(fr.total_logged(), logged);

  const auto t = fr.tail(kCap);
  ASSERT_EQ(t.size(), kCap);
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Survivors are exactly the last kCap logs, oldest first...
    EXPECT_EQ(t[i].detail, "e" + std::to_string(logged - kCap + i));
    // ... monotone in time and exchange seq.
    if (i > 0) {
      EXPECT_GE(t[i].at, t[i - 1].at);
      EXPECT_GE(t[i].exchange_seq, t[i - 1].exchange_seq);
    }
  }
  EXPECT_EQ(t.back().exchange_seq, 99u);

  std::ostringstream os;
  fr.dump_tail(os, 4);  // ask for less than the ring holds
  const std::string s = os.str();
  EXPECT_NE(s.find(std::to_string(logged - 4) + " earlier event(s)"), std::string::npos) << s;
  // The four youngest survive, in order.
  std::size_t prev = 0;
  for (std::uint64_t i = logged - 4; i < logged; ++i) {
    const auto pos = s.find("e" + std::to_string(i));
    ASSERT_NE(pos, std::string::npos) << s;
    EXPECT_GT(pos, prev) << s;
    prev = pos;
  }
  EXPECT_EQ(s.find("e" + std::to_string(logged - 5)), std::string::npos) << s;
}

TEST(FlightRecorderTest, ZeroCapacityClampsToOne) {
  FlightRecorder fr(0);
  fr.log(EventKind::kNote, 0, "l", "only");
  EXPECT_EQ(fr.capacity(), 1u);
  EXPECT_EQ(fr.size(), 1u);
}

// --- telemetry facade --------------------------------------------------------

TEST(TelemetryFacade, GpuOpsFeedPackUnpackHistograms) {
  Telemetry tel;
  tel.on_gpu_op("gpu0.kernel", "pack +x", 1024, 0, 100);
  tel.on_gpu_op("gpu0.kernel", "unpack +x", 1024, 100, 350);
  tel.on_gpu_op("gpu0.d2h", "memcpy 1KiB", 1024, 350, 400);
  const auto& m = tel.metrics();
  EXPECT_EQ(m.counter_value("vgpu_ops_total"), 3u);
  EXPECT_EQ(m.counter_value("vgpu_bytes_total"), 3072u);
  EXPECT_EQ(m.histograms().at("vgpu_pack_ns").count(), 1u);
  EXPECT_EQ(m.histograms().at("vgpu_pack_ns").sum(), 100u);
  EXPECT_EQ(m.histograms().at("vgpu_unpack_ns").count(), 1u);
  EXPECT_EQ(m.histograms().at("vgpu_unpack_ns").sum(), 250u);
  EXPECT_EQ(tel.flight().size(), 3u);
}

TEST(TelemetryFacade, MpiHooksCount) {
  Telemetry tel;
  tel.on_mpi_post(0, 1, 5, 512, /*is_send=*/true, 10);
  tel.on_mpi_post(0, 1, 5, 512, /*is_send=*/false, 10);
  tel.on_mpi_drop(0, 1, 5, 1, 20);
  tel.on_mpi_match(0, 1, 5, 512, /*attempts=*/2, /*same_node=*/false, 30);
  tel.on_mpi_match(2, 3, 6, 256, /*attempts=*/1, /*same_node=*/true, 40);
  tel.on_mpi_lost(4, 5, 7, 3, 50);
  const auto& m = tel.metrics();
  EXPECT_EQ(m.counter_value("mpi_sends_posted_total"), 1u);
  EXPECT_EQ(m.counter_value("mpi_recvs_posted_total"), 1u);
  EXPECT_EQ(m.counter_value("mpi_messages_total"), 2u);
  EXPECT_EQ(m.counter_value("mpi_bytes_total"), 768u);
  EXPECT_EQ(m.counter_value("mpi_messages_inter_node_total"), 1u);
  EXPECT_EQ(m.counter_value("mpi_messages_intra_node_total"), 1u);
  EXPECT_EQ(m.counter_value("mpi_retries_total"), 1u);
  EXPECT_EQ(m.counter_value("mpi_drops_total"), 1u);
  EXPECT_EQ(m.counter_value("mpi_messages_lost_total"), 1u);
  EXPECT_EQ(m.histograms().at("mpi_message_bytes").count(), 2u);
}

TEST(TelemetryFacade, TransportErrorCapturesDump) {
  Telemetry tel;
  tel.on_mpi_post(0, 1, 9, 64, true, 5);
  EXPECT_EQ(tel.last_dump(), "");
  tel.on_transport_error("wait timed out after 2 s", 100);
  EXPECT_EQ(tel.metrics().counter_value("mpi_transport_errors_total"), 1u);
  const std::string dump = tel.last_dump();
  EXPECT_NE(dump.find("TransportError: wait timed out"), std::string::npos) << dump;
  EXPECT_NE(dump.find("flight recorder"), std::string::npos) << dump;
  EXPECT_NE(dump.find("isend tag=9"), std::string::npos) << dump;
}

TEST(TelemetryFacade, PlanEventCounters) {
  Telemetry tel;
  tel.on_plan_event("compile");
  tel.on_plan_event("hit");
  tel.on_plan_event("hit");
  tel.on_plan_event("replay");
  EXPECT_EQ(tel.metrics().counter_value("plan_compiles_total"), 1u);
  EXPECT_EQ(tel.metrics().counter_value("plan_hits_total"), 2u);
  EXPECT_EQ(tel.metrics().counter_value("plan_replays_total"), 1u);
}

TEST(TelemetryFacade, ExchangeHooksAndDemotion) {
  Telemetry tel;
  tel.on_exchange_start(1, 0);
  tel.on_exchange_end(1, "staged", 4, 4096, 100);
  tel.on_exchange_latency(100);
  tel.on_demotion(7, "peer", "staged", 50);
  const auto& m = tel.metrics();
  EXPECT_EQ(m.counter_value("exchanges_total"), 1u);
  EXPECT_EQ(m.counter_value("exchange_messages_total{method=\"staged\"}"), 4u);
  EXPECT_EQ(m.counter_value("exchange_bytes_total{method=\"staged\"}"), 4096u);
  EXPECT_EQ(m.counter_value("fault_demotions_total"), 1u);
  EXPECT_EQ(m.histograms().at("exchange_latency_ns").count(), 1u);
  // The flight ring saw start, end, and demotion, stamped with the seq.
  const auto t = tel.flight().tail(8);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].kind, EventKind::kExchangeStart);
  EXPECT_EQ(t[0].exchange_seq, 1u);
  EXPECT_EQ(t[2].detail, "tag=7 peer->staged");
}

TEST(TelemetryFacade, DeadlockDumpEndToEnd) {
  sim::Engine eng;
  sim::Gate gate("stuck-gate");
  Telemetry tel;
  tel.flight().log(EventKind::kNote, 0, "exchange", "about to hang");
  tel.install_deadlock_dump(eng, 16);
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] { gate.wait(eng, "token that never comes"); });
  EXPECT_THROW(eng.run(std::move(bodies), {"waiter"}), sim::DeadlockError);
  const std::string dump = tel.last_dump();
  EXPECT_NE(dump.find("waiter"), std::string::npos) << dump;
  EXPECT_NE(dump.find("stuck-gate"), std::string::npos) << dump;
  EXPECT_NE(dump.find("flight recorder"), std::string::npos) << dump;
  EXPECT_NE(dump.find("about to hang"), std::string::npos) << dump;
}

// --- critical path -----------------------------------------------------------

TEST(CriticalPathTest, KnownChainFullyBusy) {
  CriticalPath cp({span("a", "A", 0, 10), span("b", "B", 10, 30), span("c", "C", 30, 35)});
  cp.add_edge(0, 1);
  cp.add_edge(1, 2);
  const auto an = cp.analyze();
  EXPECT_EQ(an.makespan, 35);
  ASSERT_EQ(an.chain.size(), 3u);
  EXPECT_EQ(an.chain[0].label, "A");
  EXPECT_EQ(an.chain[1].label, "B");
  EXPECT_EQ(an.chain[2].label, "C");
  EXPECT_EQ(an.critical_busy, 35);
  EXPECT_EQ(an.critical_wait, 0);
  EXPECT_DOUBLE_EQ(an.overlap_efficiency, 1.0);
}

TEST(CriticalPathTest, WaitGapsLowerOverlapEfficiency) {
  CriticalPath cp({span("a", "A", 0, 10), span("b", "B", 15, 30)});
  cp.add_edge(0, 1);
  const auto an = cp.analyze();
  EXPECT_EQ(an.makespan, 30);
  ASSERT_EQ(an.chain.size(), 2u);
  EXPECT_EQ(an.chain[1].wait, 5);
  EXPECT_EQ(an.critical_busy, 25);
  EXPECT_EQ(an.critical_wait, 5);
  EXPECT_NEAR(an.overlap_efficiency, 25.0 / 30.0, 1e-12);
}

TEST(CriticalPathTest, LaneStatsReportSlack) {
  CriticalPath cp({span("busy", "long", 0, 90), span("idle", "short", 0, 10)});
  const auto an = cp.analyze();
  ASSERT_EQ(an.lanes.size(), 2u);
  EXPECT_EQ(an.lanes[0].lane, "busy");  // sorted by busy descending
  EXPECT_EQ(an.lanes[0].busy, 90);
  EXPECT_EQ(an.lanes[0].slack, 0);
  EXPECT_EQ(an.lanes[1].lane, "idle");
  EXPECT_EQ(an.lanes[1].slack, 80);
  const auto top = an.top_bottlenecks(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].lane, "busy");
}

TEST(CriticalPathTest, ExplicitEdgeWinsEndTies) {
  // Both "a" and "b" end at 10; only the explicit edge names the real trigger.
  CriticalPath cp({span("a", "A", 0, 10), span("b", "B", 0, 10), span("c", "C", 10, 20)});
  cp.add_edge(1, 2);
  const auto an = cp.analyze();
  ASSERT_EQ(an.chain.size(), 2u);
  EXPECT_EQ(an.chain[0].label, "B");
}

TEST(CriticalPathTest, LaneFifoChainsWithoutExplicitEdges) {
  CriticalPath cp({span("l", "first", 0, 10), span("l", "second", 20, 30)});
  const auto an = cp.analyze();
  ASSERT_EQ(an.chain.size(), 2u);
  EXPECT_EQ(an.chain[0].label, "first");
  EXPECT_EQ(an.chain[1].wait, 10);
}

TEST(CriticalPathTest, ContradictedEdgesAreIgnored) {
  CriticalPath cp({span("a", "A", 0, 10), span("b", "B", 5, 8)});
  cp.add_edge(0, 1);   // A ends after B starts: not a real dependency
  cp.add_edge(0, 0);   // self
  cp.add_edge(7, 1);   // out of range
  EXPECT_EQ(cp.edge_count(), 0u);
}

TEST(CriticalPathTest, LaneMatchesCheckerDescriptions) {
  EXPECT_TRUE(CriticalPath::lane_matches("gpu0/default", "gpu0.kernel"));
  EXPECT_TRUE(CriticalPath::lane_matches("gpu2/s1", "gpu2->gpu3"));
  EXPECT_TRUE(CriticalPath::lane_matches("rank0", "rank0.cpu"));
  EXPECT_FALSE(CriticalPath::lane_matches("gpu1/default", "gpu0.kernel"));
  EXPECT_FALSE(CriticalPath::lane_matches("gpu1/default", "gpu10.kernel"));
}

TEST(CriticalPathTest, HbEdgesBridgeToSpans) {
  CriticalPath cp({span("gpu0.kernel", "pack", 0, 10), span("gpu1.kernel", "unpack", 20, 30)});
  std::vector<telemetry::HbEdge> edges;
  edges.push_back({"gpu0/default", "gpu1/s1", 15});
  edges.push_back({"gpu7/default", "gpu9/s1", 15});  // matches nothing
  EXPECT_EQ(cp.add_hb_edges(edges), 1u);
  const auto an = cp.analyze();
  ASSERT_EQ(an.chain.size(), 2u);
  EXPECT_EQ(an.chain[0].lane, "gpu0.kernel");
  EXPECT_EQ(an.chain[1].lane, "gpu1.kernel");
}

TEST(CriticalPathTest, EmptySpansProduceEmptyAnalysis) {
  CriticalPath cp({});
  const auto an = cp.analyze();
  EXPECT_EQ(an.makespan, 0);
  EXPECT_TRUE(an.chain.empty());
  EXPECT_TRUE(an.lanes.empty());
  EXPECT_DOUBLE_EQ(an.overlap_efficiency, 0.0);
  EXPECT_NE(an.str().find("critical path"), std::string::npos);
}

TEST(CriticalPathTest, OverlappedBeatsSerialized) {
  // Overlapped: three lanes busy concurrently, chain is wall-to-wall busy.
  CriticalPath overlapped(
      {span("l1", "work", 0, 30), span("l2", "work", 0, 28), span("l3", "tail", 30, 40)});
  // Serialized: same work, but every span waits for the previous to finish.
  CriticalPath serialized(
      {span("l1", "work", 0, 10), span("l2", "work", 20, 30), span("l3", "tail", 40, 50)});
  const double eff_overlapped = overlapped.analyze().overlap_efficiency;
  const double eff_serialized = serialized.analyze().overlap_efficiency;
  EXPECT_DOUBLE_EQ(eff_overlapped, 1.0);
  EXPECT_NEAR(eff_serialized, 30.0 / 50.0, 1e-12);
  EXPECT_GT(eff_overlapped, eff_serialized);
}

TEST(CriticalPathTest, StrReportsHopsAndBottlenecks) {
  CriticalPath cp({span("gpu0.d2h", "memcpy", 0, 10), span("mpi.r0->r1", "msg", 10, 50)});
  cp.add_edge(0, 1);
  const std::string s = cp.analyze().str(3);
  EXPECT_NE(s.find("overlap efficiency"), std::string::npos) << s;
  EXPECT_NE(s.find("memcpy"), std::string::npos) << s;
  EXPECT_NE(s.find("bottleneck lanes"), std::string::npos) << s;
  EXPECT_NE(s.find("mpi.r0->r1"), std::string::npos) << s;
}

// --- exporters ---------------------------------------------------------------

TEST(Exporters, PrometheusTextIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("exchange_bytes_total{method=\"staged\"}").add(4096);
  reg.counter("exchange_bytes_total{method=\"peer\"}").add(128);
  reg.gauge("plan_stats_hits").set(3);
  reg.histogram("exchange_latency_ns").observe(900);
  reg.histogram("exchange_latency_ns").observe(1100);
  reg.set_help("exchange_bytes_total", "Halo bytes moved, by method.");
  std::ostringstream os;
  telemetry::write_prometheus(os, reg);
  const std::string s = os.str();
  // One HELP + TYPE pair per base name, even with two labeled series, with
  // HELP immediately before TYPE and both before the first sample.
  EXPECT_NE(s.find("# HELP exchange_bytes_total Halo bytes moved, by method."), std::string::npos)
      << s;
  EXPECT_EQ(s.find("# HELP exchange_bytes_total"), s.rfind("# HELP exchange_bytes_total"));
  EXPECT_NE(s.find("# TYPE exchange_bytes_total counter"), std::string::npos) << s;
  EXPECT_EQ(s.find("# TYPE exchange_bytes_total counter"),
            s.rfind("# TYPE exchange_bytes_total counter"));
  EXPECT_LT(s.find("# HELP exchange_bytes_total"), s.find("# TYPE exchange_bytes_total counter"));
  EXPECT_LT(s.find("# TYPE exchange_bytes_total counter"), s.find("exchange_bytes_total{"));
  // Undocumented metrics still get a generated HELP line (promtool parses
  // help-free metrics, but a uniform format keeps scrapers simple).
  EXPECT_NE(s.find("# HELP plan_stats_hits "), std::string::npos) << s;
  EXPECT_NE(s.find("# HELP exchange_latency_ns "), std::string::npos) << s;
  EXPECT_NE(s.find("exchange_bytes_total{method=\"staged\"} 4096"), std::string::npos) << s;
  EXPECT_NE(s.find("# TYPE plan_stats_hits gauge"), std::string::npos) << s;
  EXPECT_NE(s.find("# TYPE exchange_latency_ns histogram"), std::string::npos) << s;
  // Cumulative buckets: the le="1024" bucket holds one sample, +Inf both.
  EXPECT_NE(s.find("exchange_latency_ns_bucket{le=\"1024\"} 1"), std::string::npos) << s;
  EXPECT_NE(s.find("exchange_latency_ns_bucket{le=\"+Inf\"} 2"), std::string::npos) << s;
  EXPECT_NE(s.find("exchange_latency_ns_sum 2000"), std::string::npos) << s;
  EXPECT_NE(s.find("exchange_latency_ns_count 2"), std::string::npos) << s;
  // Every non-comment line is `name{labels} value` or `name value`.
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
  }
}

TEST(Exporters, MetricsJsonIsValid) {
  MetricsRegistry reg;
  reg.counter("with\"quote").add(1);  // name escaping must hold
  reg.gauge("g").set(0.25);
  reg.histogram("h").observe(5);
  std::ostringstream os;
  telemetry::write_metrics_json(os, reg);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"counters\""), std::string::npos);
  std::ostringstream empty;
  telemetry::write_metrics_json(empty, MetricsRegistry{});
  EXPECT_TRUE(json_valid(empty.str())) << empty.str();
}

TEST(Exporters, ChromeTraceIsValidAndEnriched) {
  std::vector<OpRecord> spans_v = {span("gpu0.d2h", "memcpy \"8B\"", 0, 10),
                                   span("mpi.r0->r1", "msg\ntag=1", 10, 50)};
  CriticalPath cp(spans_v);
  cp.add_edge(0, 1);
  const auto an = cp.analyze();
  MetricsRegistry reg;
  reg.counter("exchanges_total").add(2);
  std::ostringstream os;
  telemetry::write_chrome_trace(os, spans_v, &reg, &an);
  const std::string s = os.str();
  EXPECT_TRUE(json_valid(s)) << s;
  EXPECT_NE(s.find("thread_name"), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"C\""), std::string::npos);      // counter event
  EXPECT_NE(s.find("\"critical\": true"), std::string::npos);  // chain membership arg
  EXPECT_NE(s.find("exchanges_total"), std::string::npos);

  std::ostringstream empty;
  telemetry::write_chrome_trace(empty, {});
  EXPECT_TRUE(json_valid(empty.str())) << empty.str();
}

TEST(Exporters, ReportJsonCombinesMetricsAndCriticalPath) {
  MetricsRegistry reg;
  reg.counter("exchanges_total").add(1);
  CriticalPath cp({span("a", "A", 0, 10), span("b", "B", 10, 30)});
  cp.add_edge(0, 1);
  std::ostringstream os;
  telemetry::write_report_json(os, reg, cp.analyze());
  const std::string s = os.str();
  EXPECT_TRUE(json_valid(s)) << s;
  EXPECT_NE(s.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(s.find("\"makespan_ns\""), std::string::npos);
  EXPECT_NE(s.find("\"overlap_efficiency\""), std::string::npos);
  EXPECT_NE(s.find("\"chain\""), std::string::npos);
  EXPECT_NE(s.find("\"lanes\""), std::string::npos);
}

// --- end-to-end through the domain ------------------------------------------

namespace {

constexpr std::size_t kQ = 1;

void run_small_domain(Cluster& cluster, int exchanges, bool persistent,
                      std::function<void(DistributedDomain&)> inspect) {
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 24, 24});
    dd.set_radius(1);
    for (std::size_t q = 0; q < kQ; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    if (persistent) dd.set_persistent(true);
    for (int i = 0; i < exchanges; ++i) {
      dd.exchange();
      ctx.comm.barrier();
    }
    inspect(dd);
  });
}

}  // namespace

TEST(DomainTelemetry, CountsExchangesAndLatency) {
  Cluster cluster(topo::summit(), 1, 1);
  run_small_domain(cluster, 3, false, [&](DistributedDomain& dd) {
    const auto& m = dd.telemetry().metrics();
    EXPECT_EQ(m.counter_value("exchanges_total"), 3u);
    const auto& lat = m.histograms().at("exchange_latency_ns");
    EXPECT_EQ(lat.count(), 3u);
    EXPECT_GT(lat.sum(), 0u);
    EXPECT_FALSE(dd.telemetry().flight().empty());
  });
}

TEST(DomainTelemetry, PerMethodCountersMatchMethodBytesHistogram) {
  Cluster cluster(topo::summit(), 1, 1);
  run_small_domain(cluster, 2, false, [&](DistributedDomain& dd) {
    // Satellite: method_bytes_histogram reflects the realized transfer set.
    const auto hist = dd.method_bytes_histogram();
    EXPECT_FALSE(hist.empty());
    std::size_t hist_transfers = 0, hist_bytes = 0;
    for (const auto& [m, cb] : hist) {
      EXPECT_GT(cb.first, 0);
      EXPECT_GT(cb.second, 0u);
      hist_transfers += static_cast<std::size_t>(cb.first);
      hist_bytes += cb.second;
      // Each exchange sends every transfer of this method once, so the
      // per-method telemetry counters are exactly 2x the realized set.
      const std::string label = std::string("{method=\"") + to_string(m) + "\"}";
      const auto& reg = dd.telemetry().metrics();
      EXPECT_EQ(reg.counter_value("exchange_messages_total" + label),
                2u * static_cast<std::uint64_t>(cb.first));
      EXPECT_EQ(reg.counter_value("exchange_bytes_total" + label), 2u * cb.second);
    }
    EXPECT_EQ(hist_transfers, dd.transfers().size());
    EXPECT_GT(hist_bytes, 0u);
  });
}

TEST(DomainTelemetry, PlanStatsCountersAndExport) {
  Cluster cluster(topo::summit(), 1, 1);
  run_small_domain(cluster, 2, true, [&](DistributedDomain& dd) {
    // Satellite: the PlanStats counters behind plan_report.
    const plan::PlanStats& ps = dd.plan_stats();
    EXPECT_EQ(ps.compiles, 1u);
    EXPECT_EQ(ps.hits, 1u);
    EXPECT_EQ(ps.replays, 2u);
    EXPECT_EQ(ps.invalidations, 0u);
    EXPECT_NE(ps.str().find("compiles=1"), std::string::npos);

    const auto& m = dd.telemetry().metrics();
    EXPECT_EQ(m.counter_value("plan_compiles_total"), 1u);
    EXPECT_EQ(m.counter_value("plan_hits_total"), 1u);
    EXPECT_EQ(m.counter_value("plan_replays_total"), 2u);
    EXPECT_DOUBLE_EQ(m.gauges().at("plan_stats_compiles").value, 1.0);
    EXPECT_DOUBLE_EQ(m.gauges().at("plan_stats_replays").value, 2.0);

    MetricsRegistry fresh;
    ps.export_to(fresh);
    EXPECT_DOUBLE_EQ(fresh.gauges().at("plan_stats_hits").value, 1.0);
  });
}

TEST(DomainTelemetry, ClusterWideTelemetryCapturesSubstrate) {
  Cluster cluster(topo::summit(), 2, 1);
  Telemetry tel;
  cluster.set_telemetry(&tel);
  run_small_domain(cluster, 1, false, [](DistributedDomain&) {});
  const auto& m = tel.metrics();
  EXPECT_GT(m.counter_value("vgpu_ops_total"), 0u);
  EXPECT_GT(m.counter_value("vgpu_bytes_total"), 0u);
  EXPECT_GT(m.histograms().at("vgpu_pack_ns").count(), 0u);
  EXPECT_GT(m.histograms().at("vgpu_unpack_ns").count(), 0u);
  // Two nodes: the staged path crosses MPI.
  EXPECT_GT(m.counter_value("mpi_messages_total"), 0u);
  EXPECT_GT(m.counter_value("mpi_bytes_total"), 0u);
  EXPECT_GT(m.counter_value("mpi_sends_posted_total"), 0u);
  EXPECT_EQ(m.counter_value("mpi_messages_lost_total"), 0u);
}

TEST(DomainTelemetry, ExchangePlanGaugesExported) {
  Cluster cluster(topo::summit(), 1, 1);
  run_small_domain(cluster, 1, false, [&](DistributedDomain& dd) {
    const auto& g = dd.telemetry().metrics().gauges();
    const auto it = g.find("exchange_plan_total_transfers");
    ASSERT_NE(it, g.end());
    EXPECT_DOUBLE_EQ(it->second.value, static_cast<double>(dd.transfers().size()));
  });
}

// --- registry edge cases -----------------------------------------------------

TEST(RegistryMerge, DisjointNamesUnionAndCollidingNamesFold) {
  MetricsRegistry a, b;
  a.counter("only_a_total").add(3);
  a.counter("shared_total{method=\"staged\"}").add(5);
  a.gauge("shared_gauge").set(1.0);
  a.histogram("shared_ns").observe(8);
  b.counter("only_b_total").add(7);
  b.counter("shared_total{method=\"staged\"}").add(11);
  // Same base name, different label set: a distinct series, not a collision.
  b.counter("shared_total{method=\"peer\"}").add(2);
  b.gauge("shared_gauge").set(4.0);
  b.histogram("shared_ns").observe(8);
  b.histogram("shared_ns").observe(1024);

  a.merge(b);
  EXPECT_EQ(a.counter_value("only_a_total"), 3u);
  EXPECT_EQ(a.counter_value("only_b_total"), 7u);
  EXPECT_EQ(a.counter_value("shared_total{method=\"staged\"}"), 16u);  // adds
  EXPECT_EQ(a.counter_value("shared_total{method=\"peer\"}"), 2u);
  EXPECT_DOUBLE_EQ(a.gauges().at("shared_gauge").value, 4.0);  // last write wins
  const Histogram& h = a.histograms().at("shared_ns");
  EXPECT_EQ(h.count(), 3u);  // bucketwise fold
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(8)), 2u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(1024)), 1u);
  EXPECT_EQ(h.sum(), 8u + 8u + 1024u);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("findings_total{kind=\"say \"hi\" now\"}").add(1);
  reg.counter("paths_total{path=\"a\\b\"}").add(2);
  reg.gauge("msg_gauge{note=\"line1\nline2\"}").set(3.0);
  std::ostringstream os;
  telemetry::write_prometheus(os, reg);
  const std::string out = os.str();
  // Exposition-format label values must escape quotes, backslashes, and
  // newlines — and the output must stay one series per line.
  EXPECT_NE(out.find("findings_total{kind=\"say \\\"hi\\\" now\"} 1"), std::string::npos)
      << out;
  EXPECT_NE(out.find("paths_total{path=\"a\\\\b\"} 2"), std::string::npos) << out;
  EXPECT_NE(out.find("msg_gauge{note=\"line1\\nline2\"} 3"), std::string::npos) << out;
}

TEST(Exporters, PrometheusHelpTextEscapesAndMerges) {
  MetricsRegistry reg;
  reg.counter("odd_total").add(1);
  reg.set_help("odd_total", "path c:\\tmp\nsecond line");
  std::ostringstream os;
  telemetry::write_prometheus(os, reg);
  // HELP values escape backslash and newline so the line stays one line.
  EXPECT_NE(os.str().find("# HELP odd_total path c:\\\\tmp\\nsecond line\n"), std::string::npos)
      << os.str();

  // merge(): first registration wins when two registries document one base.
  MetricsRegistry a, b;
  a.counter("x_total").add(1);
  a.set_help("x_total", "from a");
  b.counter("x_total").add(2);
  b.set_help("x_total", "from b");
  b.set_help("y_total", "only b");
  a.merge(b);
  EXPECT_EQ(a.help_texts().at("x_total"), "from a");
  EXPECT_EQ(a.help_texts().at("y_total"), "only b");
  a.clear();
  EXPECT_TRUE(a.help_texts().empty());
}

TEST(HistogramBuckets, PowerOfTwoBoundaries) {
  // Bucket i holds 2^(i-1) < v <= 2^i; bucket 0 holds {0, 1}.
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 0);
  EXPECT_EQ(Histogram::bucket_index(2), 1);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 2);
  EXPECT_EQ(Histogram::bucket_index(1024), 10);      // exactly 2^10
  EXPECT_EQ(Histogram::bucket_index(1025), 11);      // one past the bound
  EXPECT_EQ(Histogram::bucket_index((1ull << 63)), 63);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()), 63);
  EXPECT_EQ(Histogram::bucket_bound(0), 1u);
  EXPECT_EQ(Histogram::bucket_bound(10), 1024u);
  // Top bucket bound saturates instead of overflowing.
  EXPECT_EQ(Histogram::bucket_bound(63), std::numeric_limits<std::uint64_t>::max());

  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(63), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.used_buckets(), 64);
}

// --- engine throughput gauges ------------------------------------------------

TEST(EngineTelemetry, RecordEngineExportsDeterministicThroughputGauges) {
  const auto run_once = [] {
    Telemetry tel;
    Cluster cluster(topo::summit(), 1, 2);
    cluster.set_mem_mode(vgpu::MemMode::kPhantom);
    cluster.set_telemetry(&tel);
    cluster.run([](RankCtx& ctx) {
      for (int i = 0; i < 4; ++i) {
        ctx.engine().sleep_for(1000);
        ctx.comm.barrier();
      }
    });
    const auto& g = tel.metrics().gauges();
    struct Snap {
      double events, rate, depth, switches;
    };
    return Snap{g.at("sim_events_processed").value,
                g.at("sim_events_per_virtual_second").value,
                g.at("sim_max_run_queue_depth").value, g.at("sim_context_switches").value};
  };
  const auto a = run_once();
  EXPECT_GT(a.events, 0.0);
  EXPECT_GT(a.rate, 0.0);
  EXPECT_GE(a.depth, 1.0);
  EXPECT_LE(a.depth, 2.0);  // two actors on this shape
  EXPECT_GT(a.switches, 0.0);
  // Virtual-time derived: a second identical run exports identical numbers.
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.rate, b.rate);
  EXPECT_DOUBLE_EQ(a.depth, b.depth);
  EXPECT_DOUBLE_EQ(a.switches, b.switches);
}
