#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::Method;
using stencil::MethodFlags;
using stencil::PlacementStrategy;
using stencil::RankCtx;

TEST(DistributedDomain, ConfigValidation) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {32, 32, 32});
    EXPECT_THROW(dd.set_radius(0), std::invalid_argument);
    EXPECT_THROW(dd.set_methods(MethodFlags::kPeer), std::invalid_argument);  // no remote method
    EXPECT_THROW(dd.realize(), std::logic_error);  // no quantities
    dd.add_data<float>("q");
    dd.realize();
    EXPECT_THROW(dd.realize(), std::logic_error);
    EXPECT_THROW(dd.set_radius(2), std::logic_error);  // after realize
  });
  EXPECT_THROW(Cluster(stencil::topo::summit(), 1, 1)
                   .run([](RankCtx& ctx) { DistributedDomain dd(ctx, {0, 1, 1}); }),
               std::invalid_argument);
}

TEST(DistributedDomain, CudaAwareRejectedOnNonCudaAwarePlatform) {
  Cluster cluster(stencil::topo::pcie_box(2), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {32, 32, 32});
    EXPECT_THROW(dd.set_methods(MethodFlags::kAllCudaAware), std::invalid_argument);
  });
}

TEST(DistributedDomain, SubdomainOwnershipCoversAllGpus) {
  Cluster cluster(stencil::topo::summit(), 2, 3);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {48, 48, 48});
    dd.add_data<float>("q");
    dd.realize();
    ASSERT_EQ(dd.num_subdomains(), 2u);  // 6 GPUs / 3 ranks
    for (std::size_t i = 0; i < dd.num_subdomains(); ++i) {
      EXPECT_EQ(dd.subdomain(i).gpu(), ctx.gpus[i]);
      EXPECT_EQ(dd.placement().global_gpu_of(dd.subdomain(i).index()), ctx.gpus[i]);
    }
  });
}

TEST(DistributedDomain, ExchangeAdvancesVirtualTime) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {96, 96, 96});
    dd.set_radius(2);
    dd.add_data<float>("q");
    dd.realize();
    const double t0 = ctx.comm.wtime();
    dd.exchange();
    const double ms = (ctx.comm.wtime() - t0) * 1e3;
    EXPECT_GT(ms, 0.01);  // something was actually transferred
    EXPECT_LT(ms, 1e4);
    EXPECT_EQ(dd.exchanges_done(), 1u);
  });
}

TEST(DistributedDomain, MoreCapabilitiesNeverSlower) {
  // On a single node the specialization tiers must be monotone: each added
  // capability can only remove work from the MPI path.
  auto time_with = [&](MethodFlags flags) {
    Cluster cluster(stencil::topo::summit(), 1, 6);
    std::vector<double> per_rank(6, 0.0);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {240, 240, 240});
      dd.add_data<float>("a");
      dd.add_data<float>("b");
      dd.set_methods(flags);
      dd.realize();
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      ctx.comm.barrier();
      per_rank[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
    });
    return *std::max_element(per_rank.begin(), per_rank.end());
  };
  const double staged = time_with(MethodFlags::kStaged);
  const double colo = time_with(MethodFlags::kStaged | MethodFlags::kColocated);
  const double all = time_with(MethodFlags::kAll);
  EXPECT_LE(colo, staged * 1.05);
  EXPECT_LE(all, colo * 1.05);
  EXPECT_LT(all, staged);  // specialization must actually win on-node
}

TEST(DistributedDomain, LocalHistogramMatchesMethods) {
  Cluster cluster(stencil::topo::summit(), 1, 6);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {60, 60, 60});
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    const auto h = dd.local_method_histogram();
    EXPECT_EQ(h.count(Method::kCudaAwareMpi), 0u);
    EXPECT_GT(h.count(Method::kColocated), 0u);  // 6 ranks: everything colocated
  });
}

TEST(DistributedDomain, ComputeLaunchAndSync) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {48, 48, 48});
    dd.add_data<float>("q");
    dd.realize();
    int ran = 0;
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      dd.launch_compute(ld, "jacobi", 1 << 20, [&] { ++ran; });
    });
    dd.compute_synchronize();
    EXPECT_EQ(ran, 6);
  });
}

TEST(DistributedDomain, PhantomModeRunsWithoutData) {
  Cluster cluster(stencil::topo::summit(), 2, 6);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {512, 512, 512});
    dd.set_radius(3);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.add_data<float>("c");
    dd.add_data<float>("d");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    ctx.comm.barrier();
    const double t0 = ctx.comm.wtime();
    dd.exchange();
    ctx.comm.barrier();
    EXPECT_GT(ctx.comm.wtime() - t0, 0.0);
  });
}

TEST(DistributedDomain, DeterministicExchangeTimes) {
  auto run_once = [] {
    Cluster cluster(stencil::topo::summit(), 2, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    std::vector<double> times(12, 0.0);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {300, 300, 300});
      dd.add_data<float>("q");
      dd.set_methods(MethodFlags::kAll);
      dd.realize();
      for (int i = 0; i < 2; ++i) {
        ctx.comm.barrier();
        dd.exchange();
      }
      ctx.comm.barrier();
      times[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime();
    });
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}
