#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/radius.h"
#include "core/region.h"
#include "topo/archetype.h"

using stencil::Boundary;
using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::Radius;
using stencil::RankCtx;
using stencil::Region3;

TEST(Radius, UniformConstruction) {
  const Radius r = 3;  // implicit from int
  EXPECT_TRUE(r.is_uniform());
  EXPECT_EQ(r.max(), 3);
  EXPECT_EQ(r.min(), 3);
  EXPECT_EQ(r.neg(0), 3);
  EXPECT_EQ(r.pos(2), 3);
  EXPECT_EQ(r.padding(), (Dim3{6, 6, 6}));
  EXPECT_EQ(r.offsets(), (Dim3{3, 3, 3}));
  EXPECT_EQ(Radius::uniform(3), r);
}

TEST(Radius, AsymmetricConstruction) {
  const Radius r = Radius::faces(2, 0, 1, 1, 0, 3);
  EXPECT_FALSE(r.is_uniform());
  EXPECT_EQ(r.neg(0), 2);
  EXPECT_EQ(r.pos(0), 0);
  EXPECT_EQ(r.neg(1), 1);
  EXPECT_EQ(r.pos(2), 3);
  EXPECT_EQ(r.max(), 3);
  EXPECT_EQ(r.min(), 0);
  EXPECT_EQ(r.padding(), (Dim3{2, 2, 3}));
  EXPECT_EQ(r.offsets(), (Dim3{2, 1, 0}));
}

TEST(Radius, SlabWidthFollowsReceiverSide) {
  const Radius r = Radius::faces(2, 1, 0, 0, 0, 0);
  // Data moving in +x fills the receiver's negative-face halo: width 2.
  EXPECT_EQ(r.slab_width(0, 1), 2);
  // Data moving in -x fills the receiver's positive-face halo: width 1.
  EXPECT_EQ(r.slab_width(0, -1), 1);
  EXPECT_EQ(r.slab_width(1, 1), 0);
}

TEST(Radius, AsymmetricSlabGeometry) {
  const Radius r = Radius::faces(2, 1, 3, 3, 0, 0);
  const Dim3 sz{10, 10, 10};
  // +x transfer: receiver's xm = 2 cells; sender sends its top 2 x-layers.
  const Region3 s = stencil::interior_slab(sz, {1, 0, 0}, r);
  EXPECT_EQ(s.origin, (Dim3{8, 0, 0}));
  EXPECT_EQ(s.extent, (Dim3{2, 10, 10}));
  const Region3 h = stencil::halo_slab(sz, {1, 0, 0}, r);
  EXPECT_EQ(h.origin, (Dim3{-2, 0, 0}));
  // -x transfer: receiver's xp = 1.
  EXPECT_EQ(stencil::interior_slab(sz, {-1, 0, 0}, r).extent, (Dim3{1, 10, 10}));
  EXPECT_EQ(stencil::halo_slab(sz, {-1, 0, 0}, r).origin, (Dim3{10, 0, 0}));
  // z transfers carry nothing.
  EXPECT_EQ(stencil::halo_volume(sz, {0, 0, 1}, r), 0);
  // Diagonal: width per non-zero axis.
  EXPECT_EQ(stencil::halo_volume(sz, {1, -1, 0}, r), 2 * 3 * 10);
}

TEST(Radius, ValidationInDomain) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {32, 32, 32});
    EXPECT_THROW(dd.set_radius(Radius::faces(-1, 1, 1, 1, 1, 1)), std::invalid_argument);
    EXPECT_THROW(dd.set_radius(Radius::faces(0, 0, 0, 0, 0, 0)), std::invalid_argument);
    EXPECT_NO_THROW(dd.set_radius(Radius::faces(2, 0, 0, 0, 0, 0)));  // upwind-x only
  });
}

namespace {
float coord_value(Dim3 g) { return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z); }
constexpr float kSentinel = -4444.0f;
}  // namespace

TEST(Radius, AsymmetricExchangeFillsExactlyTheRequestedHalos) {
  // Upwind-style: read 2 cells of the -x neighbor and 1 cell of +y; no z
  // halo at all. Only the matching transfers may move data.
  const Radius r = Radius::faces(/*xm=*/2, /*xp=*/0, /*ym=*/0, /*yp=*/1, /*zm=*/0, /*zp=*/0);
  Cluster cluster(stencil::topo::summit(), 1, 3);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 18, 12});
    dd.set_radius(r);
    dd.add_data<float>("q");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();

    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      for (std::int64_t z = -r.neg(2); z < s.z + r.pos(2); ++z)
        for (std::int64_t y = -r.neg(1); y < s.y + r.pos(1); ++y)
          for (std::int64_t x = -r.neg(0); x < s.x + r.pos(0); ++x) {
            v(x, y, z) = Dim3{x, y, z}.inside(s) ? coord_value({o.x + x, o.y + y, o.z + z})
                                                 : kSentinel;
          }
    });

    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();

    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(0);
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      for (std::int64_t z = -r.neg(2); z < s.z + r.pos(2); ++z)
        for (std::int64_t y = -r.neg(1); y < s.y + r.pos(1); ++y)
          for (std::int64_t x = -r.neg(0); x < s.x + r.pos(0); ++x) {
            if (Dim3{x, y, z}.inside(s)) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(dd.domain());
            EXPECT_EQ(v(x, y, z), coord_value(g))
                << "halo [" << x << "," << y << "," << z << "] of subdomain "
                << ld.index().str();
          }
    });
  });
}

TEST(Radius, AsymmetricMovesLessDataThanUniform) {
  auto run = [](Radius r) {
    Cluster cluster(stencil::topo::summit(), 2, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    std::vector<double> t(12, 0.0);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {300, 300, 300});
      dd.set_radius(r);
      dd.add_data<float>("q");
      dd.set_methods(MethodFlags::kAll);
      dd.realize();
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      ctx.comm.barrier();
      t[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
    });
    return *std::max_element(t.begin(), t.end());
  };
  EXPECT_LT(run(Radius::faces(2, 0, 2, 0, 2, 0)), run(Radius::uniform(2)));
}

TEST(Radius, StorageMatchesPadding) {
  Cluster cluster(stencil::topo::summit(), 1, 6);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {30, 30, 30});
    dd.set_radius(Radius::faces(2, 1, 0, 3, 1, 0));
    dd.add_data<float>("q");
    dd.realize();
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      EXPECT_EQ(ld.storage(), ld.size() + (Dim3{3, 3, 1}));
    });
  });
}
