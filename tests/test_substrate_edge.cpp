// Edge cases across the simulation substrate: engine gates, MPI protocol
// boundaries, vgpu event/stream interactions, and machine model quirks
// that the main suites don't reach.
#include <gtest/gtest.h>

#include <cstring>

#include "simpi/mpi.h"
#include "simtime/engine.h"
#include "topo/machine.h"
#include "vgpu/runtime.h"

namespace sim = stencil::sim;
namespace topo = stencil::topo;
namespace vgpu = stencil::vgpu;
namespace simpi = stencil::simpi;

TEST(EngineEdge, NotifyWithoutWaitersIsNoop) {
  sim::Engine eng;
  sim::Gate gate("empty");
  eng.run({[&] {
    gate.notify_all(eng);  // nothing to wake
    sim::Engine::current()->sleep_for(10);
    SUCCEED();
  }});
}

TEST(EngineEdge, MultipleGatesIndependent) {
  sim::Engine eng;
  sim::Gate a("a"), b("b");
  int phase = 0;
  std::vector<int> log;
  eng.run({[&] {
             while (phase < 1) a.wait(eng);
             log.push_back(1);
             phase = 2;
             b.notify_all(eng);
           },
           [&] {
             sim::Engine::current()->sleep_for(100);
             phase = 1;
             a.notify_all(eng);
             while (phase < 2) b.wait(eng);
             log.push_back(2);
           }});
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EngineEdge, GateWaiterRewaitsAfterSpuriousNotify) {
  sim::Engine eng;
  sim::Gate gate("pred");
  bool ready = false;
  int wakes = 0;
  eng.run({[&] {
             while (!ready) {
               gate.wait(eng);
               ++wakes;
             }
             EXPECT_GE(wakes, 2);  // first notify was "spurious"
           },
           [&] {
             auto* e = sim::Engine::current();
             e->sleep_for(10);
             gate.notify_all(eng);  // predicate still false
             e->sleep_for(10);
             ready = true;
             gate.notify_all(eng);
           }});
}

TEST(EngineEdge, RunAgainAfterError) {
  sim::Engine eng;
  EXPECT_THROW(eng.run({[] { throw std::runtime_error("first"); }}), std::runtime_error);
  // The engine must be reusable after a failed cohort.
  bool ran = false;
  eng.run({[&] {
    sim::Engine::current()->sleep_for(5);
    ran = true;
  }});
  EXPECT_TRUE(ran);
}

TEST(SimpiEdge, EagerLimitBoundary) {
  // A send exactly at the eager limit completes immediately; one byte over
  // requires a matching receive (rendezvous).
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  simpi::Job job(eng, machine, rt, 2);
  std::vector<char> at_limit(simpi::Job::kEagerLimit, 1);
  std::vector<char> over(simpi::Job::kEagerLimit + 1, 2);
  job.run([&](simpi::Comm& comm) {
    if (comm.rank() == 0) {
      auto r1 = comm.isend(simpi::Payload::of_values(at_limit.data(), at_limit.size()), 1, 1);
      EXPECT_TRUE(comm.test(r1));  // buffered: complete at post time
      auto r2 = comm.isend(simpi::Payload::of_values(over.data(), over.size()), 1, 2);
      EXPECT_FALSE(comm.test(r2));  // rendezvous: not matched yet
      comm.wait(r2);
    } else {
      std::vector<char> a(at_limit.size()), b(over.size());
      sim::Engine::current()->sleep_for(sim::kMillisecond);  // force the sender to wait
      comm.recv(simpi::Payload::of_values(a.data(), a.size()), 0, 1);
      comm.recv(simpi::Payload::of_values(b.data(), b.size()), 0, 2);
      EXPECT_EQ(a[0], 1);
      EXPECT_EQ(b.back(), 2);
    }
  });
}

TEST(SimpiEdge, SelfMessage) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  simpi::Job job(eng, machine, rt, 1);
  job.run([&](simpi::Comm& comm) {
    double out = 3.25, in = 0.0;
    auto r = comm.irecv(simpi::Payload::of_values(&in, 1), 0, 9);
    comm.send(simpi::Payload::of_values(&out, 1), 0, 9);
    comm.wait(r);
    EXPECT_EQ(in, 3.25);
  });
}

TEST(SimpiEdge, WaitAnyReturnsEachOnceThenMinusOne) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  simpi::Job job(eng, machine, rt, 2);
  job.run([&](simpi::Comm& comm) {
    constexpr int kN = 4;
    if (comm.rank() == 0) {
      std::vector<std::vector<char>> bufs(kN, std::vector<char>(128 << 10));
      std::vector<simpi::Request> reqs;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(
            comm.irecv(simpi::Payload::of_values(bufs[static_cast<std::size_t>(i)].data(),
                                                 bufs[static_cast<std::size_t>(i)].size()),
                       1, i));
      }
      std::set<int> seen;
      for (int k = 0; k < kN; ++k) {
        const int i = comm.wait_any(reqs);
        ASSERT_GE(i, 0);
        EXPECT_TRUE(seen.insert(i).second) << "wait_any returned " << i << " twice";
        EXPECT_FALSE(reqs[static_cast<std::size_t>(i)].valid());  // REQUEST_NULL semantics
      }
      EXPECT_EQ(comm.wait_any(reqs), -1);
    } else {
      std::vector<char> buf(128 << 10, 'x');
      for (int i = kN - 1; i >= 0; --i) {  // reverse order: matching is by tag
        comm.send(simpi::Payload::of_values(buf.data(), buf.size()), 0, i);
      }
    }
  });
}

TEST(SimpiEdge, WaitAllToleratesInvalidEntries) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  simpi::Job job(eng, machine, rt, 1);
  job.run([&](simpi::Comm& comm) {
    std::vector<simpi::Request> reqs(3);  // all invalid
    EXPECT_NO_THROW(comm.waitall(reqs));
    (void)comm;
  });
}

TEST(VgpuEdge, EventAcrossDevicesOrdersStreams) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  eng.run({[&] {
    auto s0 = rt.create_stream(0);
    auto s5 = rt.create_stream(5);  // other socket
    rt.launch_kernel(s0, 128 << 20, "producer", nullptr);
    vgpu::Event ev;
    rt.record_event(ev, s0);
    rt.stream_wait_event(s5, ev);  // cross-device waits are legal in CUDA
    rt.launch_kernel(s5, 1 << 10, "consumer", nullptr);
    EXPECT_GE(rt.stream_frontier(s5), ev.completed_at);
  }});
}

TEST(VgpuEdge, ZeroByteCopyCostsOnlyLatency) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  eng.run({[&] {
    auto h = rt.alloc_pinned_host(0, 16);
    auto d = rt.alloc_device(0, 16);
    auto s = rt.create_stream(0);
    rt.memcpy_async(d, 0, h, 0, 0, s);
    rt.stream_synchronize(s);
    EXPECT_LE(eng.now(), sim::kMillisecond);
  }});
}

TEST(VgpuEdge, RecordEventTwiceTakesLatest) {
  sim::Engine eng;
  topo::Machine machine(topo::summit(), 1);
  vgpu::Runtime rt(eng, machine);
  eng.run({[&] {
    auto s = rt.create_stream(0);
    vgpu::Event ev;
    rt.launch_kernel(s, 1 << 20, "a", nullptr);
    rt.record_event(ev, s);
    const sim::Time first = ev.completed_at;
    rt.launch_kernel(s, 64 << 20, "b", nullptr);
    rt.record_event(ev, s);
    EXPECT_GT(ev.completed_at, first);
  }});
}

TEST(MachineEdge, XbusDirectionsIndependent) {
  topo::Machine m(topo::summit(), 1);
  const std::uint64_t bytes = 256ull << 20;
  // 0 -> 3 crosses sockets forward, 3 -> 0 backward; independent queues.
  const auto fwd = m.schedule_d2d(0, 3, bytes, 0);
  const auto rev = m.schedule_d2d(3, 0, bytes, 0);
  EXPECT_EQ(fwd.start, rev.start);
  // A second forward transfer queues behind the first on shared hops.
  const auto fwd2 = m.schedule_d2d(1, 4, bytes, 0);
  EXPECT_GT(fwd2.end, fwd.end);
}

TEST(MachineEdge, StridedEfficiencyAppliesOnlyToRows) {
  topo::Machine m(topo::summit(), 1);
  const std::uint64_t bytes = 64ull << 20;
  const auto long_rows = m.schedule_d2d_strided(0, 1, bytes, 1 << 20, 0);
  m.reset_resources();
  const auto dense = m.schedule_d2d(0, 1, bytes, 0);
  // MiB-long rows are effectively dense.
  EXPECT_NEAR(static_cast<double>(long_rows.duration()),
              static_cast<double>(dense.duration()), 0.01 * static_cast<double>(dense.duration()));
}

TEST(ArchetypeEdge, DgxAllPairsPeer) {
  const auto a = topo::dgx_like(8);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_TRUE(a.peer_capable(i, j)) << i << "," << j;
    }
  }
}

TEST(ArchetypeEdge, PcieBoxHasNoFastPaths) {
  const auto a = topo::pcie_box(2);
  EXPECT_FALSE(a.peer_capable(0, 1));
  EXPECT_FALSE(a.cuda_aware_mpi);
  EXPECT_EQ(a.gpu_link(0, 1), topo::LinkType::kPCIe);
  EXPECT_LT(a.achieved_gpu_bw(0, 1), 10.0);  // staged through PCIe twice
}
