#include <gtest/gtest.h>

#include <numeric>

#include "core/local_domain.h"
#include "core/region.h"
#include "simtime/engine.h"
#include "topo/machine.h"
#include "vgpu/runtime.h"

using stencil::Dim3;
using stencil::LocalDomain;
using stencil::Quantity;
using stencil::Region3;

namespace {

struct Fixture {
  stencil::sim::Engine eng;
  stencil::topo::Machine machine{stencil::topo::summit(), 1};
  stencil::vgpu::Runtime rt{eng, machine};
};

std::vector<Quantity> two_floats() { return {{"a", 4}, {"b", 4}}; }

void fill_coords(LocalDomain& ld, std::size_t q) {
  auto v = ld.view<float>(q);
  for (std::int64_t z = 0; z < ld.size().z; ++z)
    for (std::int64_t y = 0; y < ld.size().y; ++y)
      for (std::int64_t x = 0; x < ld.size().x; ++x)
        v(x, y, z) = static_cast<float>(x + 100 * y + 10000 * z + 1000000 * q);
}

}  // namespace

TEST(Region, InteriorSlabGeometry) {
  const Dim3 sz{10, 20, 30};
  const Region3 px = stencil::interior_slab(sz, {1, 0, 0}, 2);
  EXPECT_EQ(px.origin, (Dim3{8, 0, 0}));
  EXPECT_EQ(px.extent, (Dim3{2, 20, 30}));
  const Region3 mz = stencil::interior_slab(sz, {0, 0, -1}, 3);
  EXPECT_EQ(mz.origin, (Dim3{0, 0, 0}));
  EXPECT_EQ(mz.extent, (Dim3{10, 20, 3}));
  const Region3 edge = stencil::interior_slab(sz, {1, -1, 0}, 1);
  EXPECT_EQ(edge.origin, (Dim3{9, 0, 0}));
  EXPECT_EQ(edge.extent, (Dim3{1, 1, 30}));
}

TEST(Region, HaloSlabGeometry) {
  const Dim3 sz{10, 20, 30};
  // Data sent toward +x lands in the receiver's [-r, 0) x-halo.
  const Region3 px = stencil::halo_slab(sz, {1, 0, 0}, 2);
  EXPECT_EQ(px.origin, (Dim3{-2, 0, 0}));
  EXPECT_EQ(px.extent, (Dim3{2, 20, 30}));
  // Data sent toward -z lands in the receiver's [sz, sz + r) z-halo.
  const Region3 mz = stencil::halo_slab(sz, {0, 0, -1}, 3);
  EXPECT_EQ(mz.origin, (Dim3{0, 0, 30}));
  EXPECT_EQ(mz.extent, (Dim3{10, 20, 3}));
}

TEST(Region, SlabShapesMatchForUniformSizes) {
  const Dim3 sz{7, 9, 11};
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const Dim3 dir{dx, dy, dz};
        EXPECT_EQ(stencil::interior_slab(sz, dir, 2).extent,
                  stencil::halo_slab(sz, dir, 2).extent);
      }
}

TEST(LocalDomain, StorageIncludesHalo) {
  Fixture f;
  f.eng.run({[&] {
    LocalDomain ld(f.rt, 0, {0, 0, 0}, {0, 0, 0}, {8, 9, 10}, 2, two_floats());
    EXPECT_EQ(ld.storage(), (Dim3{12, 13, 14}));
    EXPECT_EQ(ld.data(0).size(), 12u * 13 * 14 * 4);
    EXPECT_EQ(ld.bytes_per_point(), 8u);
    EXPECT_EQ(ld.num_quantities(), 2u);
  }});
}

TEST(LocalDomain, RejectsBadConstruction) {
  Fixture f;
  f.eng.run({[&] {
    EXPECT_THROW(LocalDomain(f.rt, 0, {}, {}, {0, 4, 4}, 1, two_floats()), std::invalid_argument);
    EXPECT_THROW(LocalDomain(f.rt, 0, {}, {}, {4, 4, 4}, -1, two_floats()), std::invalid_argument);
  }});
}

TEST(LocalDomain, ViewTypeChecked) {
  Fixture f;
  f.eng.run({[&] {
    LocalDomain ld(f.rt, 0, {}, {}, {4, 4, 4}, 1, two_floats());
    EXPECT_NO_THROW(ld.view<float>(0));
    EXPECT_THROW(ld.view<double>(0), std::logic_error);
  }});
}

TEST(LocalDomain, ViewHaloCoordinates) {
  Fixture f;
  f.eng.run({[&] {
    LocalDomain ld(f.rt, 0, {}, {}, {4, 4, 4}, 2, two_floats());
    auto v = ld.view<float>(0);
    v(-2, -2, -2) = 1.5f;  // first storage element
    v(5, 5, 5) = 2.5f;     // last storage element
    EXPECT_EQ(ld.data(0).as<float>()[0], 1.5f);
    EXPECT_EQ(ld.data(0).as<float>()[8 * 8 * 8 - 1], 2.5f);
  }});
}

TEST(LocalDomain, PackUnpackRoundTrip) {
  Fixture f;
  f.eng.run({[&] {
    LocalDomain src(f.rt, 0, {}, {}, {6, 7, 8}, 2, two_floats());
    LocalDomain dst(f.rt, 1, {}, {}, {6, 7, 8}, 2, two_floats());
    fill_coords(src, 0);
    fill_coords(src, 1);

    for (const Dim3 dir : {Dim3{1, 0, 0}, Dim3{0, -1, 0}, Dim3{1, 1, 0}, Dim3{-1, 1, -1}}) {
      const Region3 s = stencil::interior_slab(src.size(), dir, 2);
      const Region3 d = stencil::halo_slab(dst.size(), dir, 2);
      auto buf = f.rt.alloc_device(0, src.region_bytes(s));
      src.pack_region(buf, s);
      dst.unpack_region(buf, d);
      // Every packed cell must land at the matching halo offset.
      auto sv = src.view<float>(1);
      auto dv = dst.view<float>(1);
      for (std::int64_t z = 0; z < s.extent.z; ++z)
        for (std::int64_t y = 0; y < s.extent.y; ++y)
          for (std::int64_t x = 0; x < s.extent.x; ++x) {
            EXPECT_EQ(dv(d.origin.x + x, d.origin.y + y, d.origin.z + z),
                      sv(s.origin.x + x, s.origin.y + y, s.origin.z + z))
                << "dir " << dir.str();
          }
    }
  }});
}

TEST(LocalDomain, PackBufferTooSmallRejected) {
  Fixture f;
  f.eng.run({[&] {
    LocalDomain ld(f.rt, 0, {}, {}, {6, 6, 6}, 1, two_floats());
    fill_coords(ld, 0);
    const Region3 face = stencil::interior_slab(ld.size(), {1, 0, 0}, 1);
    auto buf = f.rt.alloc_device(0, ld.region_bytes(face) - 4);
    EXPECT_THROW(ld.pack_region(buf, face), std::out_of_range);
  }});
}

TEST(LocalDomain, SelfExchangeWrapsInteriorToHalo) {
  Fixture f;
  f.eng.run({[&] {
    LocalDomain ld(f.rt, 0, {}, {}, {6, 6, 6}, 2, two_floats());
    fill_coords(ld, 0);
    ld.self_exchange({1, 0, 0});
    auto v = ld.view<float>(0);
    // The +x-most interior slab must now appear in the [-r,0) x-halo.
    for (std::int64_t z = 0; z < 6; ++z)
      for (std::int64_t y = 0; y < 6; ++y)
        for (std::int64_t r = 0; r < 2; ++r) {
          EXPECT_EQ(v(-2 + r, y, z), v(4 + r, y, z));
        }
  }});
}

TEST(LocalDomain, PhantomPackIsNoop) {
  Fixture f;
  f.eng.run({[&] {
    f.rt.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    LocalDomain ld(f.rt, 0, {}, {}, {6, 6, 6}, 1, two_floats());
    const Region3 face = stencil::interior_slab(ld.size(), {1, 0, 0}, 1);
    auto buf = f.rt.alloc_device(0, ld.region_bytes(face));
    EXPECT_NO_THROW(ld.pack_region(buf, face));    // timing-only: no data touched
    EXPECT_NO_THROW(ld.unpack_region(buf, face));
    EXPECT_NO_THROW(ld.self_exchange({0, 1, 0}));
  }});
}

TEST(LocalDomain, SwapData) {
  Fixture f;
  f.eng.run({[&] {
    LocalDomain ld(f.rt, 0, {}, {}, {4, 4, 4}, 1, two_floats());
    ld.view<float>(0)(0, 0, 0) = 1.0f;
    ld.view<float>(1)(0, 0, 0) = 2.0f;
    ld.swap_data(0, 1);
    EXPECT_EQ(ld.view<float>(0)(0, 0, 0), 2.0f);
    EXPECT_EQ(ld.view<float>(1)(0, 0, 0), 1.0f);
  }});
}

TEST(LocalDomain, RegionBytesCountsAllQuantities) {
  Fixture f;
  f.eng.run({[&] {
    std::vector<Quantity> qs{{"f", 4}, {"d", 8}};
    LocalDomain ld(f.rt, 0, {}, {}, {10, 10, 10}, 1, qs);
    const Region3 face = stencil::interior_slab(ld.size(), {0, 0, 1}, 1);
    EXPECT_EQ(ld.region_bytes(face), 10u * 10 * 1 * (4 + 8));
  }});
}
