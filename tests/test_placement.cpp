#include <gtest/gtest.h>

#include "core/exchange.h"
#include "core/placement.h"
#include "topo/archetype.h"

using stencil::Dim3;
using stencil::ExchangePlan;
using stencil::HierarchicalPartition;
using stencil::Method;
using stencil::MethodFlags;
using stencil::Neighborhood;
using stencil::Placement;
using stencil::PlacementStrategy;

namespace {
Placement make_placement(Dim3 dom, int nodes, PlacementStrategy s,
                         Neighborhood n = Neighborhood::kFull, int radius = 2) {
  HierarchicalPartition hp(dom, nodes, 6);
  return Placement(hp, stencil::topo::summit(), radius, 16, n, s);
}
}  // namespace

TEST(Directions, CountsPerNeighborhood) {
  EXPECT_EQ(stencil::neighbor_directions(Neighborhood::kFaces).size(), 6u);
  EXPECT_EQ(stencil::neighbor_directions(Neighborhood::kFacesEdges).size(), 18u);
  EXPECT_EQ(stencil::neighbor_directions(Neighborhood::kFull).size(), 26u);
}

TEST(Directions, IndexIsStableAndUnique) {
  std::vector<bool> seen(26, false);
  for (const Dim3& d : stencil::neighbor_directions(Neighborhood::kFull)) {
    const int i = stencil::direction_index(d);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, 26);
    EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
  EXPECT_EQ(stencil::direction_index({0, 0, 0}), -1);
  EXPECT_EQ(stencil::direction_index({2, 0, 0}), -1);
}

TEST(Placement, TrivialIsIdentity) {
  const auto p = make_placement({720, 720, 720}, 2, PlacementStrategy::kTrivial);
  const Dim3 gext = p.partition().gpu_extent();
  for (std::int64_t s = 0; s < gext.volume(); ++s) {
    const Dim3 gpu_idx = Dim3::from_linear(s, gext);
    const Dim3 g = p.partition().global_index({0, 0, 0}, gpu_idx);
    EXPECT_EQ(p.local_gpu_of(g), static_cast<int>(s));
  }
}

TEST(Placement, MapsAreInverse) {
  for (auto strat : {PlacementStrategy::kNodeAware, PlacementStrategy::kTrivial,
                     PlacementStrategy::kWorst}) {
    const auto p = make_placement({1440, 1452, 700}, 4, strat);
    for (int n = 0; n < 4; ++n) {
      for (int g = 0; g < 6; ++g) {
        const Dim3 idx = p.subdomain_at(n, g);
        EXPECT_EQ(p.node_linear_of(idx), n);
        EXPECT_EQ(p.local_gpu_of(idx), g);
        EXPECT_EQ(p.global_gpu_of(idx), n * 6 + g);
      }
    }
  }
}

TEST(Placement, NodeAwareNeverWorseThanTrivialOrWorst) {
  // The QAP objective orders the strategies by construction; this pins the
  // wiring (flow/distance assembly) rather than the solver.
  for (Dim3 dom : {Dim3{1440, 1452, 700}, Dim3{720, 720, 720}, Dim3{2000, 300, 300}}) {
    const double aware = make_placement(dom, 2, PlacementStrategy::kNodeAware).total_cost();
    const double trivial = make_placement(dom, 2, PlacementStrategy::kTrivial).total_cost();
    const double worst = make_placement(dom, 2, PlacementStrategy::kWorst).total_cost();
    EXPECT_LE(aware, trivial + 1e-9) << dom.str();
    EXPECT_LE(trivial, worst + 1e-9) << dom.str();
  }
}

TEST(Placement, MeasuredStrategyIsValidAndNoWorseUnderItsOwnMetric) {
  // kMeasured solves the QAP against achieved-bandwidth distances. Its
  // assignment must be a valid placement, and on Summit-like nodes (where
  // theoretical and achieved bandwidths order GPU pairs the same way) it
  // should agree with kNodeAware on which pairs to co-locate.
  const auto measured = make_placement({1440, 1452, 700}, 2, PlacementStrategy::kMeasured);
  const auto aware = make_placement({1440, 1452, 700}, 2, PlacementStrategy::kNodeAware);
  for (int n = 0; n < 2; ++n) {
    for (int g = 0; g < 6; ++g) {
      const Dim3 idx = measured.subdomain_at(n, g);
      EXPECT_EQ(measured.local_gpu_of(idx), g);
    }
  }
  // Same co-location structure: subdomains sharing a socket under one
  // strategy share a socket under the other.
  const auto& arch = stencil::topo::summit();
  const Dim3 gext = aware.partition().gpu_extent();
  for (std::int64_t a = 0; a < gext.volume(); ++a) {
    for (std::int64_t b = 0; b < gext.volume(); ++b) {
      const Dim3 ia = aware.partition().global_index({0, 0, 0}, Dim3::from_linear(a, gext));
      const Dim3 ib = aware.partition().global_index({0, 0, 0}, Dim3::from_linear(b, gext));
      const bool same_socket_aware =
          arch.socket_of(aware.local_gpu_of(ia)) == arch.socket_of(aware.local_gpu_of(ib));
      const bool same_socket_measured =
          arch.socket_of(measured.local_gpu_of(ia)) == arch.socket_of(measured.local_gpu_of(ib));
      EXPECT_EQ(same_socket_aware, same_socket_measured);
    }
  }
}

TEST(Placement, HighAspectDomainBenefitsFromNodeAware) {
  // Fig. 11's setting: 1440x1452x700 across one 6-GPU node gives 720x484x700
  // subdomains whose exchange volumes differ enough that placement matters.
  const auto aware = make_placement({1440, 1452, 700}, 1, PlacementStrategy::kNodeAware);
  const auto worst = make_placement({1440, 1452, 700}, 1, PlacementStrategy::kWorst);
  EXPECT_LT(aware.total_cost(), worst.total_cost() * 0.95);
}

TEST(Placement, FlowMatrixSymmetricForUniformSubdomains) {
  const auto p = make_placement({720, 720, 720}, 1, PlacementStrategy::kNodeAware);
  const auto w = p.node_flow(0);
  for (int i = 0; i < w.n(); ++i) {
    EXPECT_DOUBLE_EQ(w.at(i, i), 0.0);
    for (int j = 0; j < w.n(); ++j) {
      EXPECT_DOUBLE_EQ(w.at(i, j), w.at(j, i));
    }
  }
}

TEST(Placement, FlowExcludesOffNodeAndSelf) {
  // With a single subdomain column per node, every neighbor in x is
  // off-node; flow should only contain intra-node pairs.
  HierarchicalPartition hp({600, 100, 100}, 4, 6);
  Placement p(hp, stencil::topo::summit(), 1, 4, Neighborhood::kFull,
              PlacementStrategy::kNodeAware);
  const auto w = p.node_flow(0);
  double total = 0;
  for (int i = 0; i < w.n(); ++i)
    for (int j = 0; j < w.n(); ++j) total += w.at(i, j);
  EXPECT_GT(total, 0.0);  // there is still intra-node flow among the 6 GPUs
}

TEST(ExchangePlan, MethodSelectionTiers) {
  const auto p = make_placement({720, 720, 720}, 2, PlacementStrategy::kTrivial);
  // All methods on, 2 ranks/node (3 GPUs per rank).
  const auto plan = ExchangePlan::full(p, 2, MethodFlags::kAll, Neighborhood::kFull);
  const auto h = plan.method_histogram();
  EXPECT_GT(h.count(Method::kPeer), 0u);
  EXPECT_GT(h.count(Method::kColocated), 0u);
  EXPECT_GT(h.count(Method::kStaged), 0u);
  EXPECT_EQ(h.count(Method::kCudaAwareMpi), 0u);
  for (const auto& t : plan.transfers()) {
    switch (t.method) {
      case Method::kKernel:
        EXPECT_TRUE(t.self());
        break;
      case Method::kPeer:
        EXPECT_EQ(t.src_rank, t.dst_rank);
        break;
      case Method::kColocated:
        EXPECT_NE(t.src_rank, t.dst_rank);
        EXPECT_EQ(t.src_gpu / 6, t.dst_gpu / 6);
        break;
      case Method::kStaged:
      case Method::kCudaAwareMpi:
        EXPECT_NE(t.src_gpu / 6, t.dst_gpu / 6);
        break;
    }
  }
}

TEST(ExchangePlan, StagedOnlyUsesMpiForEverything) {
  const auto p = make_placement({720, 720, 720}, 1, PlacementStrategy::kTrivial);
  const auto plan = ExchangePlan::full(p, 1, MethodFlags::kStaged, Neighborhood::kFull);
  for (const auto& t : plan.transfers()) EXPECT_EQ(t.method, Method::kStaged);
}

TEST(ExchangePlan, CudaAwarePreferredWhenEnabled) {
  const auto p = make_placement({720, 720, 720}, 2, PlacementStrategy::kTrivial);
  const auto plan = ExchangePlan::full(
      p, 6, MethodFlags::kStaged | MethodFlags::kCudaAwareMpi, Neighborhood::kFull);
  for (const auto& t : plan.transfers()) EXPECT_EQ(t.method, Method::kCudaAwareMpi);
}

TEST(ExchangePlan, KernelOnlyForSelfExchange) {
  // A domain one subdomain wide in z self-exchanges in z with wrap.
  HierarchicalPartition hp({400, 400, 40}, 1, 6);
  Placement p(hp, stencil::topo::summit(), 1, 4, Neighborhood::kFull,
              PlacementStrategy::kTrivial);
  ASSERT_EQ(hp.global_extent().z, 1);
  const auto plan = ExchangePlan::full(p, 1, MethodFlags::kAll, Neighborhood::kFull);
  int kernels = 0;
  for (const auto& t : plan.transfers()) {
    if (t.method == Method::kKernel) {
      EXPECT_TRUE(t.self());
      ++kernels;
    }
  }
  EXPECT_GT(kernels, 0);
}

TEST(ExchangePlan, ForRankCoversExactlyItsTransfers) {
  const auto p = make_placement({720, 720, 720}, 2, PlacementStrategy::kNodeAware);
  const auto full = ExchangePlan::full(p, 6, MethodFlags::kAll, Neighborhood::kFull);
  for (int rank = 0; rank < 12; ++rank) {
    const auto mine = ExchangePlan::for_rank(p, rank, 6, MethodFlags::kAll, Neighborhood::kFull);
    std::size_t expected = 0;
    for (const auto& t : full.transfers()) {
      if (t.src_rank == rank || t.dst_rank == rank) ++expected;
    }
    EXPECT_EQ(mine.transfers().size(), expected) << "rank " << rank;
    for (const auto& t : mine.transfers()) {
      EXPECT_TRUE(t.src_rank == rank || t.dst_rank == rank);
    }
  }
}

TEST(ExchangePlan, TagsUniquePerSourceAndDirection) {
  const auto p = make_placement({720, 720, 720}, 2, PlacementStrategy::kNodeAware);
  const auto full = ExchangePlan::full(p, 6, MethodFlags::kAll, Neighborhood::kFull);
  std::set<int> tags;
  for (const auto& t : full.transfers()) {
    EXPECT_TRUE(tags.insert(t.tag).second) << "duplicate tag " << t.tag;
  }
}
