// Selective-quantity exchange: only the listed quantities move; the rest
// keep whatever was in their halos, and the traffic shrinks accordingly.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::MethodFlags;
using stencil::RankCtx;

namespace {

float coord_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) + 4.0e6f * static_cast<float>(q);
}
constexpr float kSentinel = -1234.5f;

void fill_with_sentinel_halos(DistributedDomain& dd, std::size_t nq) {
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      const Dim3 s = ld.size();
      for (std::int64_t z = -r; z < s.z + r; ++z)
        for (std::int64_t y = -r; y < s.y + r; ++y)
          for (std::int64_t x = -r; x < s.x + r; ++x) {
            v(x, y, z) = Dim3{x, y, z}.inside(s) ? coord_value({o.x + x, o.y + y, o.z + z}, q)
                                                 : kSentinel;
          }
    }
  });
}

void check_halo_state(DistributedDomain& dd, std::size_t q, bool expect_exchanged) {
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
    auto v = ld.view<float>(q);
    const Dim3 o = ld.origin();
    const Dim3 s = ld.size();
    for (std::int64_t z = -r; z < s.z + r; ++z)
      for (std::int64_t y = -r; y < s.y + r; ++y)
        for (std::int64_t x = -r; x < s.x + r; ++x) {
          if (Dim3{x, y, z}.inside(s)) continue;
          const float got = v(x, y, z);
          if (expect_exchanged) {
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(dd.domain());
            ASSERT_EQ(got, coord_value(g, q)) << "q" << q << " [" << x << "," << y << "," << z
                                              << "] of " << ld.index().str();
          } else {
            ASSERT_EQ(got, kSentinel) << "q" << q << " halo was touched at [" << x << "," << y
                                      << "," << z << "]";
          }
        }
  });
}

}  // namespace

TEST(SelectiveExchange, OnlyListedQuantitiesMove) {
  for (const bool aggregated : {false, true}) {
    Cluster cluster(stencil::topo::summit(), 2, 3);
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {23, 17, 11});
      dd.set_radius(1);
      dd.add_data<float>("a");  // 0: exchanged
      dd.add_data<float>("b");  // 1: not exchanged
      dd.add_data<float>("c");  // 2: exchanged
      dd.set_methods(MethodFlags::kAll);
      dd.set_remote_aggregation(aggregated);
      dd.realize();
      fill_with_sentinel_halos(dd, 3);
      ctx.comm.barrier();
      dd.exchange({0, 2});
      ctx.comm.barrier();
      check_halo_state(dd, 0, true);
      check_halo_state(dd, 1, false);
      check_halo_state(dd, 2, true);
    });
  }
}

TEST(SelectiveExchange, ValidatesIndices) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {24, 24, 24});
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.realize();
    EXPECT_THROW(dd.exchange({}), std::invalid_argument);
    EXPECT_THROW(dd.exchange({2}), std::invalid_argument);
    EXPECT_THROW(dd.exchange({1, 0}), std::invalid_argument);  // must be increasing
    EXPECT_THROW(dd.exchange({0, 0}), std::invalid_argument);  // must be unique
    EXPECT_NO_THROW(dd.exchange({1}));
  });
}

TEST(SelectiveExchange, SubsetIsProportionallyCheaper) {
  auto timed = [](const std::vector<std::size_t>& qs) {
    Cluster cluster(stencil::topo::summit(), 1, 6);
    cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
    double t = 0.0;
    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, {720, 720, 720});
      dd.set_radius(3);
      for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
      dd.set_methods(MethodFlags::kAll);
      dd.realize();
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange(qs);
      ctx.comm.barrier();
      if (ctx.rank() == 0) t = ctx.comm.wtime() - t0;
    });
    return t;
  };
  const double one = timed({0});
  const double all = timed({0, 1, 2, 3});
  EXPECT_LT(one, all);
  EXPECT_GT(one, all / 8.0);  // latency floor keeps it above a strict 1/4
}

TEST(SelectiveExchange, AlternatingSubsetsStayCorrect) {
  Cluster cluster(stencil::topo::summit(), 1, 2);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, {20, 16, 12});
    dd.set_radius(1);
    dd.add_data<float>("a");
    dd.add_data<float>("b");
    dd.set_methods(MethodFlags::kAll);
    dd.realize();
    for (int it = 0; it < 3; ++it) {
      fill_with_sentinel_halos(dd, 2);
      ctx.comm.barrier();
      const std::size_t q = static_cast<std::size_t>(it % 2);
      dd.exchange({q});
      ctx.comm.barrier();
      check_halo_state(dd, q, true);
      check_halo_state(dd, 1 - q, false);
    }
    // And a final full exchange restores both.
    fill_with_sentinel_halos(dd, 2);
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    check_halo_state(dd, 0, true);
    check_halo_state(dd, 1, true);
  });
}
