// Integration tests pinning the paper's qualitative results (the shapes the
// benchmarks print) at small scale, so CI catches any regression of a
// headline claim without running the full sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::MethodFlags;
using stencil::PlacementStrategy;
using stencil::RankCtx;

namespace {

double exchange_ms(int nodes, int rpn, Dim3 domain, MethodFlags flags,
                   PlacementStrategy strategy = PlacementStrategy::kNodeAware) {
  Cluster cluster(stencil::topo::summit(), nodes, rpn);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  std::vector<double> t(static_cast<std::size_t>(nodes) * rpn, 0.0);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(3);
    for (int q = 0; q < 4; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(flags);
    dd.set_placement(strategy);
    dd.realize();
    ctx.comm.barrier();
    dd.exchange();
    ctx.comm.barrier();
    const double t0 = ctx.comm.wtime();
    dd.exchange();
    t[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
  });
  return *std::max_element(t.begin(), t.end()) * 1e3;
}

Dim3 weak_domain(int gpus) {
  const auto e = static_cast<std::int64_t>(
      std::llround(750.0 * std::cbrt(static_cast<double>(gpus))));
  return {e, e, e};
}

}  // namespace

TEST(PaperShapes, Fig12aSpecializationRatiosAtSixRanks) {
  const Dim3 dom = weak_domain(6);
  const double staged = exchange_ms(1, 6, dom, MethodFlags::kStaged);
  const double ca = exchange_ms(1, 6, dom, MethodFlags::kStaged | MethodFlags::kCudaAwareMpi);
  const double best = exchange_ms(1, 6, dom, MethodFlags::kAll);
  // Paper: ~6x over STAGED, ~2x over CUDA-aware, CA ~3x faster than STAGED.
  EXPECT_GT(staged / best, 4.0);
  EXPECT_LT(staged / best, 9.0);
  EXPECT_GT(ca / best, 1.3);
  EXPECT_LT(ca / best, 3.0);
  EXPECT_GT(staged / ca, 2.0);
}

TEST(PaperShapes, Fig12aMoreRanksHelpStaged) {
  const Dim3 dom = weak_domain(6);
  const double r1 = exchange_ms(1, 1, dom, MethodFlags::kStaged);
  const double r2 = exchange_ms(1, 2, dom, MethodFlags::kStaged);
  const double r6 = exchange_ms(1, 6, dom, MethodFlags::kStaged);
  EXPECT_GT(r1, r2);
  EXPECT_GT(r2, r6);
}

TEST(PaperShapes, Fig12bWeakScalingFlattens) {
  // Once off-node traffic dominates, doubling nodes (at constant per-GPU
  // volume) must not blow the exchange up: ratio close to 1.
  const double n2 = exchange_ms(2, 6, weak_domain(12), MethodFlags::kAll);
  const double n4 = exchange_ms(4, 6, weak_domain(24), MethodFlags::kAll);
  const double n8 = exchange_ms(8, 6, weak_domain(48), MethodFlags::kAll);
  EXPECT_LT(n8 / n4, 1.5);
  EXPECT_LT(n4 / n2, 2.0);
}

TEST(PaperShapes, Fig12cCudaAwareDegradesWithScale) {
  // Once most nodes have their full neighbor set, the non-CA exchange
  // flattens under weak scaling while the CUDA-aware one keeps climbing
  // (default-stream serialization + per-message device sync).
  const MethodFlags ca = MethodFlags::kStaged | MethodFlags::kCudaAwareMpi;
  const double ca8 = exchange_ms(8, 6, weak_domain(48), ca);
  const double ca16 = exchange_ms(16, 6, weak_domain(96), ca);
  const double plain8 = exchange_ms(8, 6, weak_domain(48), MethodFlags::kAll);
  const double plain16 = exchange_ms(16, 6, weak_domain(96), MethodFlags::kAll);
  EXPECT_LT(plain16 / plain8, 1.2);  // flat without CA
  EXPECT_GT(ca16 / ca8, 1.2);        // degrading with CA
  EXPECT_GT(ca16, plain16);          // and strictly worse at scale
}

TEST(PaperShapes, Fig13StrongScalingDropsThenSpecializationStopsMattering) {
  const Dim3 dom{1363, 1363, 1363};
  const double n1_best = exchange_ms(1, 6, dom, MethodFlags::kAll);
  const double n1_remote = exchange_ms(1, 6, dom, MethodFlags::kStaged);
  const double n8_remote = exchange_ms(8, 6, dom, MethodFlags::kStaged);
  const double n8_best = exchange_ms(8, 6, dom, MethodFlags::kAll);
  const double n16_best = exchange_ms(16, 6, dom, MethodFlags::kAll);
  EXPECT_LT(n8_remote, n1_remote);       // strong scaling works for STAGED...
  EXPECT_LT(n16_best, n1_best);          // ...and for the specialized path by 16 nodes
  EXPECT_GT(n1_remote / n1_best, 3.0);   // specialization matters at 1 node
  EXPECT_LT(n8_remote / n8_best, 1.3);   // ...but not at 8 nodes
}

TEST(PaperShapes, Fig11PlacementOnlyMattersOffCube) {
  const Dim3 skew{1440, 1452, 700};
  const Dim3 cube{1364, 1364, 1364};
  const double aware = exchange_ms(1, 6, skew, MethodFlags::kAll, PlacementStrategy::kNodeAware);
  const double trivial = exchange_ms(1, 6, skew, MethodFlags::kAll, PlacementStrategy::kTrivial);
  EXPECT_GT(trivial / aware, 1.1);  // paper: ~1.2x
  EXPECT_LT(trivial / aware, 1.6);
  const double c_aware = exchange_ms(1, 6, cube, MethodFlags::kAll, PlacementStrategy::kNodeAware);
  const double c_triv = exchange_ms(1, 6, cube, MethodFlags::kAll, PlacementStrategy::kTrivial);
  EXPECT_NEAR(c_triv / c_aware, 1.0, 0.02);  // no effect on cubes
}
