#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

using stencil::Cluster;
using stencil::Dim3;
using stencil::PlacementStrategy;
using stencil::RankCtx;

TEST(Cluster, GpuOwnershipBlocksWithinNode) {
  Cluster cluster(stencil::topo::summit(), 2, 3);
  std::vector<std::vector<int>> owned(6);
  cluster.run([&](RankCtx& ctx) {
    owned[static_cast<std::size_t>(ctx.rank())] = ctx.gpus;
    EXPECT_EQ(ctx.gpus_per_rank, 2);
  });
  EXPECT_EQ(owned[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(owned[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(owned[2], (std::vector<int>{4, 5}));
  EXPECT_EQ(owned[3], (std::vector<int>{6, 7}));
  EXPECT_EQ(owned[5], (std::vector<int>{10, 11}));
}

TEST(Cluster, SingleRankOwnsWholeNode) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    EXPECT_EQ(ctx.gpus, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(ctx.node(), 0);
  });
}

TEST(Cluster, PlacementCacheSharedAcrossRanks) {
  Cluster cluster(stencil::topo::summit(), 1, 6);
  std::vector<const stencil::Placement*> seen(6, nullptr);
  cluster.run([&](RankCtx& ctx) {
    auto p = ctx.cluster.placement_cached({120, 120, 120}, 2, 8, stencil::Neighborhood::kFull,
                                          PlacementStrategy::kNodeAware);
    seen[static_cast<std::size_t>(ctx.rank())] = p.get();
  });
  for (int r = 1; r < 6; ++r) {
    EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(r)]) << "rank " << r << " recomputed";
  }
}

TEST(Cluster, PlacementCacheKeyedByParameters) {
  Cluster cluster(stencil::topo::summit(), 1, 1);
  cluster.run([&](RankCtx& ctx) {
    auto a = ctx.cluster.placement_cached({64, 64, 64}, 1, 4, stencil::Neighborhood::kFull,
                                          PlacementStrategy::kNodeAware);
    auto b = ctx.cluster.placement_cached({64, 64, 64}, 2, 4, stencil::Neighborhood::kFull,
                                          PlacementStrategy::kNodeAware);
    auto c = ctx.cluster.placement_cached({64, 64, 64}, 1, 4, stencil::Neighborhood::kFull,
                                          PlacementStrategy::kTrivial);
    auto a2 = ctx.cluster.placement_cached({64, 64, 64}, 1, 4, stencil::Neighborhood::kFull,
                                           PlacementStrategy::kNodeAware);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(a.get(), a2.get());
  });
}

TEST(Cluster, RunIsRepeatable) {
  Cluster cluster(stencil::topo::summit(), 1, 2);
  int runs = 0;
  cluster.run([&](RankCtx&) { ++runs; });
  cluster.run([&](RankCtx&) { ++runs; });
  EXPECT_EQ(runs, 4);
  // Virtual time persists across run() calls.
  EXPECT_GE(cluster.engine().now(), 0);
}

TEST(Cluster, ExceptionInOneRankPropagates) {
  Cluster cluster(stencil::topo::summit(), 1, 3);
  EXPECT_THROW(cluster.run([&](RankCtx& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("rank 1 died");
    ctx.comm.barrier();  // the others park here and get unwound
  }),
               std::runtime_error);
}
