#pragma once

// Shared option parsing and config runner for the example CLI tools
// (exchange_explorer, plan_report).

#include <map>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

namespace stencil::cli {

struct Options {
  bool help = false;
  bool csv = false;
  std::string arch_name = "summit";
  topo::NodeArchetype arch = topo::summit();
  int nodes = 1;
  int rpn = 6;
  Dim3 domain{1363, 1363, 1363};
  int radius = 3;
  int quantities = 4;
  std::string methods_name = "all";
  MethodFlags methods = MethodFlags::kAll;
  std::string placement_name = "aware";
  PlacementStrategy placement = PlacementStrategy::kNodeAware;
  Boundary boundary = Boundary::kPeriodic;
  PackMode pack = PackMode::kKernel;
  bool aggregate = false;
  bool persistent = false;
  int iters = 3;
};

struct RunResult {
  int gpus_per_node = 0;
  Dim3 node_extent, gpu_extent, global_extent, subdomain_size;
  std::map<Method, int> rank0_methods;
  // Per-method (transfer count, payload bytes) over rank 0's realized
  // transfer set — reflects runtime demotions, unlike the static plan.
  std::map<Method, std::pair<int, std::size_t>> rank0_method_bytes;
  // With --persistent: rank 0's compiled plans and cache counters.
  std::string rank0_plan_dump;
  std::string rank0_plan_stats;
  double exchange_ms = 0.0;
};

bool parse(int argc, char** argv, Options* opt, std::string* err);
void print_usage(const char* tool);
RunResult run_config(const Options& opt);

}  // namespace stencil::cli
