#pragma once

// Shared option parsing and config runner for the example CLI tools
// (exchange_explorer, plan_report).

#include <map>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "dtrace/collector.h"
#include "topo/archetype.h"

namespace stencil::cli {

/// Shared distributed-tracing flags, consumed by telemetry_report,
/// trace_explorer, and bench_timeline so every tool spells them the same:
///   --trace-out FILE      merged chrome trace (one process per rank, flow
///                         arrows along every message) — open in Perfetto
///   --trace-merge PREFIX  per-rank JSON documents PREFIX.rankN.json (plus
///                         PREFIX.shared.json for unattributed lanes), the
///                         offline-merge workflow of dtrace::Collector::merge
struct TraceOptions {
  std::string out;
  std::string merge;
  bool any() const { return !out.empty() || !merge.empty(); }
};

/// Recognizes one trace flag at argv[*i], consuming its value. Returns true
/// when the flag was recognized (check *err afterwards: a recognized flag
/// with a missing value sets it); false when argv[*i] is not a trace flag.
bool parse_trace_flag(int argc, char** argv, int* i, TraceOptions* t, std::string* err);

/// The usage lines for the trace flags (tools append them to their help).
void print_trace_usage();

/// Writes the collector's outputs as requested: merged chrome trace to
/// t.out, per-rank documents to t.merge. False on I/O failure (*err set).
bool write_trace_outputs(const dtrace::Collector& c, const TraceOptions& t, std::string* err);

struct Options {
  bool help = false;
  bool csv = false;
  std::string arch_name = "summit";
  topo::NodeArchetype arch = topo::summit();
  int nodes = 1;
  int rpn = 6;
  Dim3 domain{1363, 1363, 1363};
  int radius = 3;
  int quantities = 4;
  std::string methods_name = "all";
  MethodFlags methods = MethodFlags::kAll;
  std::string placement_name = "aware";
  PlacementStrategy placement = PlacementStrategy::kNodeAware;
  Boundary boundary = Boundary::kPeriodic;
  PackMode pack = PackMode::kKernel;
  bool aggregate = false;
  bool persistent = false;
  int iters = 3;
};

struct RunResult {
  int gpus_per_node = 0;
  Dim3 node_extent, gpu_extent, global_extent, subdomain_size;
  std::map<Method, int> rank0_methods;
  // Per-method (transfer count, payload bytes) over rank 0's realized
  // transfer set — reflects runtime demotions, unlike the static plan.
  std::map<Method, std::pair<int, std::size_t>> rank0_method_bytes;
  // With --persistent: rank 0's compiled plans and cache counters.
  std::string rank0_plan_dump;
  std::string rank0_plan_stats;
  double exchange_ms = 0.0;
};

bool parse(int argc, char** argv, Options* opt, std::string* err);
void print_usage(const char* tool);
RunResult run_config(const Options& opt);

}  // namespace stencil::cli
