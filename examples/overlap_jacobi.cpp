// overlap_jacobi: the canonical overlapped time step. While halos are in
// flight (exchange_start), the interior *core* — points whose stencil reads
// no halo cell — is updated; after exchange_finish, only the thin boundary
// shell remains. Compares the overlapped step against the sequential
// exchange-then-compute step, checking both produce identical fields.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/stencil_op.h"
#include "topo/archetype.h"

namespace {

constexpr std::int64_t kEdge = 36;
constexpr float kAlpha = 0.15f;

void jacobi_region(stencil::LocalDomain& ld, const stencil::Region3& reg) {
  if (ld.data(0).mode() != stencil::vgpu::MemMode::kMaterialized) return;  // timing-only run
  auto t = ld.view<float>(0);
  auto tn = ld.view<float>(1);
  stencil::for_region(reg, [&](std::int64_t x, std::int64_t y, std::int64_t z) {
    const float lap = t(x - 1, y, z) + t(x + 1, y, z) + t(x, y - 1, z) + t(x, y + 1, z) +
                      t(x, y, z - 1) + t(x, y, z + 1) - 6.0f * t(x, y, z);
    tn(x, y, z) = t(x, y, z) + kAlpha * lap;
  });
}

double run(bool overlapped, int steps, std::int64_t edge, bool phantom, std::vector<float>* out) {
  stencil::Cluster cluster(stencil::topo::summit(), 1, 6);
  if (phantom) cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  double elapsed = 0.0;
  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, {edge, edge, edge});
    dd.set_radius(1);
    dd.set_neighborhood(stencil::Neighborhood::kFaces);
    dd.add_data<float>("T");
    dd.add_data<float>("T_next");
    dd.realize();

    if (!phantom) {
      dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
        auto v = ld.view<float>(0);
        const stencil::Dim3 o = ld.origin();
        stencil::for_interior(ld, [&](std::int64_t x, std::int64_t y, std::int64_t z) {
          v(x, y, z) = static_cast<float>(std::sin(0.3 * static_cast<double>(o.x + x)) +
                                          std::cos(0.2 * static_cast<double>(o.y + y)) +
                                          std::sin(0.1 * static_cast<double>(o.z + z)));
        });
      });
    }

    ctx.comm.barrier();
    const double t0 = ctx.comm.wtime();
    for (int step = 0; step < steps; ++step) {
      if (overlapped) {
        dd.exchange_start();
        dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
          const auto core = stencil::interior_core(ld);
          dd.launch_compute(ld, "core", static_cast<std::uint64_t>(core.volume()) * 8 * 4,
                            [&ld, core] { jacobi_region(ld, core); });
        });
        dd.exchange_finish();
        dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
          stencil::for_boundary_shell(ld, [&](const stencil::Region3& shell) {
            dd.launch_compute(ld, "shell", static_cast<std::uint64_t>(shell.volume()) * 8 * 4,
                              [&ld, shell] { jacobi_region(ld, shell); });
          });
        });
      } else {
        dd.exchange();
        dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
          const stencil::Region3 whole{{0, 0, 0}, ld.size()};
          dd.launch_compute(ld, "jacobi", static_cast<std::uint64_t>(ld.size().volume()) * 8 * 4,
                            [&ld, whole] { jacobi_region(ld, whole); });
        });
      }
      dd.compute_synchronize();
      dd.for_each_subdomain([&](stencil::LocalDomain& ld) { ld.swap_data(0, 1); });
    }
    ctx.comm.barrier();
    if (ctx.rank() == 0) elapsed = ctx.comm.wtime() - t0;

    // Rank 0 serializes its first subdomain's field for the equality check.
    if (ctx.rank() == 0 && out != nullptr && !phantom) {
      auto& ld = dd.subdomain(0);
      auto v = ld.view<float>(0);
      stencil::for_interior(ld, [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        out->push_back(v(x, y, z));
      });
    }
  });
  return elapsed * 1e3;
}

}  // namespace

int main() {
  constexpr int kSteps = 10;

  // Correctness: small materialized run, overlapped and sequential steps
  // must produce bit-identical fields.
  std::vector<float> seq_field, ovl_field;
  const double seq_small = run(false, kSteps, kEdge, /*phantom=*/false, &seq_field);
  const double ovl_small = run(true, kSteps, kEdge, /*phantom=*/false, &ovl_field);

  std::printf("overlap_jacobi: %d steps of radius-1 Jacobi, 1 node / 6 ranks\n\n", kSteps);
  std::printf("correctness at %lld^3 (materialized):\n", static_cast<long long>(kEdge));
  std::printf("  sequential %8.3f ms, overlapped %8.3f ms, fields identical: %s\n",
              seq_small, ovl_small, seq_field == ovl_field ? "yes" : "NO - BUG");
  std::printf("  (at this toy size the exchange is latency-bound and the extra shell\n"
              "   kernel launches cost more than they hide)\n\n");

  // Performance: realistic per-GPU volume, timing-only (phantom memory).
  constexpr std::int64_t kBig = 1092;  // ~600^3 points per GPU
  const double seq_big = run(false, 3, kBig, /*phantom=*/true, nullptr) / 3.0 * 10.0;
  const double ovl_big = run(true, 3, kBig, /*phantom=*/true, nullptr) / 3.0 * 10.0;
  std::printf("performance at %lld^3 (timing-only), normalized to %d steps:\n",
              static_cast<long long>(kBig), kSteps);
  std::printf("  sequential %8.3f ms, overlapped %8.3f ms, saving %.1f%%\n", seq_big, ovl_big,
              100.0 * (seq_big - ovl_big) / seq_big);
  return seq_field == ovl_field ? 0 : 1;
}
