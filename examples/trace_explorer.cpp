// trace_explorer: run a halo exchange under the causal distributed tracer
// (DESIGN.md §12) and explore what it sees — one merged cross-rank timeline
// with flow arrows along every message, a critical path that follows those
// message edges across rank boundaries with per-rank blame, and a live
// progress monitor that flags stragglers against its virtual-time slack.
//
//   trace_explorer                                # clean 2-node x 2-GPU run
//   trace_explorer --trace-out merged.json        # open in Perfetto
//   trace_explorer --trace-merge doc              # per-rank docs + offline merge
//   trace_explorer --straggler 3 --expect straggler   # inject + detect a slow GPU
//
// The default shape is two Summit-like nodes trimmed to one GPU per socket
// (2 nodes x 2 GPUs, one GPU per rank) so every lane fits on a screen while
// still exercising inter-node MPI, same-node IPC, and pack kernels.
// --straggler G scales GPU G's kernel throughput down by --factor; the
// ProgressMonitor compares per-rank exchange durations against the median
// and fires when a rank exceeds relative-slack x median AND the absolute
// slack floor. --expect straggler|clean turns the outcome into the exit
// status so CI can pin both the true-positive and the false-positive case.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common_cli.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "dtrace/collector.h"
#include "dtrace/progress.h"
#include "fault/fault.h"
#include "telemetry/critical_path.h"
#include "telemetry/telemetry.h"
#include "topo/archetype.h"

using namespace stencil;
namespace fault = stencil::fault;
namespace telemetry = stencil::telemetry;

namespace {

struct Args {
  int nodes = 2;
  int rpn = 2;
  std::int64_t edge = 48;
  int radius = 1;
  std::size_t quantities = 2;
  int iters = 3;
  bool persistent = false;
  int straggler = -1;       // global GPU to slow down (-1: none)
  double factor = 0.001;    // throughput scale for the slowed GPU (floored at 1e-3)
  double slack_us = 50.0;   // ProgressMonitor absolute slack floor
  double rel_slack = 2.0;   // ProgressMonitor relative slack
  std::string expect;       // "" | straggler | clean
  cli::TraceOptions trace;
};

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string terr;
    if (cli::parse_trace_flag(argc, argv, &i, &a->trace, &terr)) {
      if (!terr.empty()) {
        std::fprintf(stderr, "trace_explorer: %s\n", terr.c_str());
        return false;
      }
      continue;
    }
    const std::string f = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_explorer: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (f == "--nodes" && (v = next("--nodes"))) a->nodes = std::atoi(v);
    else if (f == "--rpn" && (v = next("--rpn"))) a->rpn = std::atoi(v);
    else if (f == "--domain" && (v = next("--domain"))) a->edge = std::atoll(v);
    else if (f == "--radius" && (v = next("--radius"))) a->radius = std::atoi(v);
    else if (f == "--quantities" && (v = next("--quantities")))
      a->quantities = static_cast<std::size_t>(std::atoll(v));
    else if (f == "--iters" && (v = next("--iters"))) a->iters = std::atoi(v);
    else if (f == "--straggler" && (v = next("--straggler"))) a->straggler = std::atoi(v);
    else if (f == "--factor" && (v = next("--factor"))) a->factor = std::atof(v);
    else if (f == "--slack-us" && (v = next("--slack-us"))) a->slack_us = std::atof(v);
    else if (f == "--rel-slack" && (v = next("--rel-slack"))) a->rel_slack = std::atof(v);
    else if (f == "--expect" && (v = next("--expect"))) a->expect = v;
    else if (f == "--persistent") { a->persistent = true; continue; }
    else if (f == "--help") {
      std::printf(
          "usage: trace_explorer [--nodes N] [--rpn R] [--domain EDGE] [--radius R]\n"
          "                      [--quantities Q] [--iters N] [--persistent]\n"
          "                      [--straggler GPU] [--factor F] [--slack-us US]\n"
          "                      [--rel-slack MULT] [--expect straggler|clean]\n");
      cli::print_trace_usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "trace_explorer: unknown flag '%s' (try --help)\n", f.c_str());
      return false;
    }
    if (v == nullptr) return false;
  }
  if (!a->expect.empty() && a->expect != "straggler" && a->expect != "clean") {
    std::fprintf(stderr, "trace_explorer: --expect takes straggler|clean\n");
    return false;
  }
  return true;
}

// Round-trip the per-rank documents through the offline merger and confirm
// the rebuilt collector renders the same merged timeline byte for byte.
bool verify_offline_merge(const dtrace::Collector& direct, const std::string& prefix) {
  std::vector<std::string> docs;
  for (int r = -1; r <= direct.max_rank(); ++r) {
    const std::string path =
        prefix + (r < 0 ? std::string(".shared") : ".rank" + std::to_string(r)) + ".json";
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "trace_explorer: cannot re-read %s\n", path.c_str());
      return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    docs.push_back(ss.str());
  }
  const dtrace::Collector rebuilt = dtrace::Collector::merge(docs);
  std::ostringstream a, b;
  direct.write_merged_chrome_trace(a);
  rebuilt.write_merged_chrome_trace(b);
  return a.str() == b.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, &a)) return 2;

  // Summit sockets with one V100 each: a 2-GPU node keeps the timeline small.
  topo::NodeArchetype arch = topo::summit();
  arch.gpus_per_socket = 1;
  if (arch.gpus_per_node() % a.rpn != 0) {
    std::fprintf(stderr, "trace_explorer: --rpn must divide %d GPUs per node\n",
                 arch.gpus_per_node());
    return 2;
  }
  const Dim3 domain{a.edge, a.edge, a.edge};
  std::printf("trace_explorer: %dn/%dr (%d GPUs), domain %s, radius %d, %d iters%s\n",
              a.nodes, a.rpn, a.nodes * arch.gpus_per_node(), domain.str().c_str(), a.radius,
              a.iters, a.persistent ? ", persistent" : "");

  Cluster cluster(arch, a.nodes, a.rpn);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);

  fault::FaultPlan plan;
  if (a.straggler >= 0) {
    plan.slow_device(0, a.straggler, a.factor);
    std::printf("injected: GPU %d kernel throughput x%.3g from t=0\n", a.straggler, a.factor);
  }
  fault::Injector inj(plan);
  if (inj.active()) cluster.set_fault_injector(&inj);

  telemetry::Telemetry tel;
  cluster.set_telemetry(&tel);
  dtrace::Collector col;
  cluster.set_collector(&col);
  dtrace::ProgressMonitor mon;
  mon.set_slack(static_cast<sim::Duration>(a.slack_us * 1000.0));
  mon.set_relative_slack(a.rel_slack);
  cluster.set_progress_monitor(&mon);

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(a.radius);
    for (std::size_t q = 0; q < a.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_persistent(a.persistent);
    dd.realize();
    for (int it = 0; it < a.iters; ++it) {
      ctx.comm.barrier();
      dd.exchange();
    }
    ctx.comm.barrier();
  });
  mon.finish(cluster.engine().now());

  std::printf("\n=== progress monitor (%llu exchanges, slack %s, %.2gx median) ===\n%s",
              static_cast<unsigned long long>(mon.exchanges_seen()),
              sim::format_duration(mon.slack()).c_str(), mon.relative_slack(),
              mon.str().c_str());

  telemetry::CriticalPath cp(col.records());
  const std::size_t msg_edges = cp.add_flow_edges(col.flows());
  const telemetry::Analysis an = cp.analyze();
  std::printf("\n=== critical path (%zu spans, %zu message edges, %d rank crossings) ===\n%s",
              col.records().size(), msg_edges, an.rank_crossings, an.str(8).c_str());

  if (a.trace.any()) {
    std::string err;
    if (!cli::write_trace_outputs(col, a.trace, &err)) {
      std::fprintf(stderr, "trace_explorer: %s\n", err.c_str());
      return 2;
    }
    if (!a.trace.out.empty())
      std::printf("\nmerged chrome trace written to %s (open in Perfetto)\n",
                  a.trace.out.c_str());
    if (!a.trace.merge.empty()) {
      std::printf("per-rank trace documents written to %s.rank*.json\n", a.trace.merge.c_str());
      if (!verify_offline_merge(col, a.trace.merge)) {
        std::fprintf(stderr, "trace_explorer: offline merge does not match direct trace\n");
        return 1;
      }
      std::printf("offline merge round-trip: identical to the direct merged trace\n");
    }
  }

  if (a.expect == "straggler") {
    const int slow_rank = a.straggler / cluster.gpus_per_rank();
    bool hit = false;
    for (const auto& alert : mon.alerts()) hit |= alert.rank == slow_rank;
    if (!hit) {
      std::fprintf(stderr, "trace_explorer: expected a straggler alert for rank %d\n",
                   slow_rank);
      return 1;
    }
    std::printf("\nexpected straggler flagged: OK\n");
  } else if (a.expect == "clean") {
    if (!mon.clean()) {
      std::fprintf(stderr, "trace_explorer: expected a clean run, got %zu alert(s)\n",
                   mon.alerts().size());
      return 1;
    }
    std::printf("\nexpected clean run: OK\n");
  }
  return 0;
}
