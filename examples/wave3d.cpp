// wave3d: 3D acoustic wave propagation with a second-order leapfrog scheme
// — a seismic-imaging-style workload (one of the paper's motivating
// application domains), using a radius-2 stencil and the full
// 26-neighborhood so that edge and corner halos are exercised too.
//
//   p_next = 2*p - p_prev + c^2 dt^2 * laplacian4(p)
//
// where laplacian4 is the 4th-order 13-point Laplacian (radius 2). The
// example tracks the wavefront (max |p|) and the discrete energy proxy
// sum(p^2), and prints the simulated cost of exchange vs compute per step.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

namespace {

constexpr std::int64_t kEdge = 60;
constexpr int kSteps = 12;
constexpr float kC2Dt2 = 0.1f;  // c^2 * dt^2 / h^2, stable for this scheme

float lap4(stencil::View<float>& p, std::int64_t x, std::int64_t y, std::int64_t z) {
  // 4th-order accurate second derivative per axis: (-1, 16, -30, 16, -1)/12.
  auto axis = [&](std::int64_t dx, std::int64_t dy, std::int64_t dz) {
    return (-p(x - 2 * dx, y - 2 * dy, z - 2 * dz) + 16.0f * p(x - dx, y - dy, z - dz) -
            30.0f * p(x, y, z) + 16.0f * p(x + dx, y + dy, z + dz) -
            p(x + 2 * dx, y + 2 * dy, z + 2 * dz)) /
           12.0f;
  };
  return axis(1, 0, 0) + axis(0, 1, 0) + axis(0, 0, 1);
}

}  // namespace

int main() {
  stencil::Cluster cluster(stencil::topo::summit(), /*nodes=*/2, /*ranks_per_node=*/2);

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, {kEdge, kEdge, kEdge});
    dd.set_radius(2);
    dd.set_neighborhood(stencil::Neighborhood::kFull);
    const auto prev = dd.add_data<float>("p_prev");
    const auto cur = dd.add_data<float>("p");
    const auto nxt = dd.add_data<float>("p_next");
    dd.set_methods(stencil::MethodFlags::kAll);
    dd.set_placement(stencil::PlacementStrategy::kNodeAware);
    dd.realize();

    // Initial condition: a compact pulse at the center, at rest.
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto p0 = ld.view<float>(prev);
      auto p1 = ld.view<float>(cur);
      const stencil::Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x) {
            const double dx = static_cast<double>(o.x + x) - kEdge / 2.0;
            const double dy = static_cast<double>(o.y + y) - kEdge / 2.0;
            const double dz = static_cast<double>(o.z + z) - kEdge / 2.0;
            const float v = static_cast<float>(std::exp(-(dx * dx + dy * dy + dz * dz) / 16.0));
            p0(x, y, z) = v;
            p1(x, y, z) = v;
          }
    });

    std::vector<double> gathered(static_cast<std::size_t>(ctx.comm.size()));
    double exchange_ms = 0.0;

    for (int step = 0; step < kSteps; ++step) {
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      exchange_ms += (ctx.comm.wtime() - t0) * 1e3;

      dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
        const auto sz = ld.size();
        dd.launch_compute(ld, "leapfrog", static_cast<std::uint64_t>(sz.volume()) * 16 * 4,
                          [&ld] {
                            auto p0 = ld.view<float>(0);
                            auto p1 = ld.view<float>(1);
                            auto p2 = ld.view<float>(2);
                            const auto s = ld.size();
                            for (std::int64_t z = 0; z < s.z; ++z)
                              for (std::int64_t y = 0; y < s.y; ++y)
                                for (std::int64_t x = 0; x < s.x; ++x) {
                                  p2(x, y, z) = 2.0f * p1(x, y, z) - p0(x, y, z) +
                                                kC2Dt2 * lap4(p1, x, y, z);
                                }
                          });
      });
      dd.compute_synchronize();
      dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
        ld.swap_data(prev, cur);  // p     -> p_prev
        ld.swap_data(cur, nxt);   // p_next -> p
      });

      if (step % 3 == 2) {
        double energy = 0.0;
        float peak = 0.0f;
        dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
          auto p = ld.view<float>(cur);
          for (std::int64_t z = 0; z < ld.size().z; ++z)
            for (std::int64_t y = 0; y < ld.size().y; ++y)
              for (std::int64_t x = 0; x < ld.size().x; ++x) {
                energy += static_cast<double>(p(x, y, z)) * p(x, y, z);
                peak = std::max(peak, std::abs(p(x, y, z)));
              }
        });
        ctx.comm.allgather(&energy, gathered.data(), sizeof(double));
        double total = 0.0;
        for (double e : gathered) total += e;
        if (ctx.rank() == 0) {
          std::printf("step %2d  sum(p^2)=%.4e  rank0 peak=%.4f  cumulative exchange %.2f ms\n",
                      step + 1, total, peak, exchange_ms);
        }
      }
    }
  });

  std::printf("wave3d done\n");
  return 0;
}
