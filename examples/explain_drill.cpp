// explain_drill — decision provenance and what-if quickstart (DESIGN.md §17).
//
// Attaches one stencil::explain ledger to a sequence of seeded faulty runs
// and shows that every scored pipeline decision left a record saying what
// was chosen, what lost, and by how much:
//
//   1. a multi-tenant scheduler run on a machine with a degraded NIC
//      (partition, placement, specialization, aggregation, plan compile,
//      sched admission incl. one hard reject, sched placement);
//   2. a capability drill that revokes peer access and CUDA-aware MPI
//      mid-run (fault-driven demotions);
//   3. an elastic-recovery incident that kills a GPU mid-run (recovery
//      ladder steps);
//   4. the what-if engine: predict the healthy-link exchange latency of a
//      degraded run from the watch's lane observations — checked against an
//      actual healthy re-run — and re-score a recorded placement under a
//      perturbed distance matrix.
//
// Scenarios 1-3 run twice, with and without the ledger attached, and the
// drill byte-compares the artifacts: provenance must be pure bookkeeping.
//
//   explain_drill                         # run everything, print summary
//   explain_drill --report [PATH]         # full human-readable decision log
//   explain_drill --json EXPLAIN_drill.json   # explain-v1 export
//   explain_drill --expect                # CI self-checks, non-zero on fail
//
// Exits 1 when --expect is given and any self-check fails, 2 on bad usage.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "explain/explain.h"
#include "fault/fault.h"
#include "recover/recover.h"
#include "sched/sched.h"
#include "topo/archetype.h"
#include "watch/watch.h"

using namespace stencil;
namespace fault = stencil::fault;
namespace sched = stencil::sched;
namespace watch = stencil::watch;

namespace {

struct Args {
  std::string json_path;
  bool report = false;
  std::string report_path;  ///< empty = stdout
  bool expect = false;
  double tolerance = 0.15;  ///< what-if accuracy bound vs the healthy re-run
};

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (f == "--json" && (v = next())) a->json_path = v;
    else if (f == "--tolerance" && (v = next())) a->tolerance = std::atof(v);
    else if (f == "--report") {
      a->report = true;
      // Optional PATH operand: write the report there instead of stdout.
      if (i + 1 < argc && argv[i + 1][0] != '-') a->report_path = argv[++i];
    }
    else if (f == "--expect") a->expect = true;
    else if (f == "--help") {
      std::printf("usage: explain_drill [--json PATH] [--report [PATH]] [--expect]\n"
                  "                     [--tolerance F]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "explain_drill: unknown flag '%s' (try --help)\n", f.c_str());
      return false;
    }
    if (v == nullptr && f != "--report" && f != "--expect") return false;
  }
  return true;
}

void fmt(std::ostringstream& os, const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  os << buf;
}

// --- scenario 1: multi-tenant scheduling on a degraded machine --------------

/// Three tenants plus one impossible job on a 4-node machine whose node-0
/// NIC runs at half speed from t=0. Returns a deterministic artifact string
/// (tenant reports + watch-v1 snapshot) for the attached/detached
/// byte-compare.
std::string run_multitenant(explain::Ledger* led) {
  std::ostringstream art;
  watch::Watch live;
  fault::FaultPlan plan;
  plan.degrade_link(0, fault::LinkClass::kNic, 0, -1, 0.5);
  plan.degrade_link(0, fault::LinkClass::kNic, -1, 0, 0.5);
  fault::Injector inj(plan);
  Cluster cluster(topo::summit(), 4, 2);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  cluster.set_watch(&live);
  cluster.set_fault_injector(&inj);
  if (led != nullptr) cluster.set_explain(led);

  sched::Scheduler::Options opt;
  opt.place = sched::PlacePolicy::kNodeAware;
  opt.live_costs = true;
  sched::Scheduler sch(cluster, opt);

  const struct {
    const char* name;
    const char* user;
    int gpus;
    Dim3 domain;
    int radius;
  } mix[3] = {
      {"alpha", "ana", 6, Dim3{48, 48, 48}, 1},
      {"bravo", "bo", 6, Dim3{40, 40, 40}, 2},
      {"charlie", "ana", 3, Dim3{36, 36, 36}, 1},
  };
  for (const auto& m : mix) {
    sched::JobSpec s;
    s.name = m.name;
    s.user = m.user;
    s.gpus = m.gpus;
    s.domain = m.domain;
    s.radius = m.radius;
    s.iterations = 3;
    sch.submit(s);
  }
  // A job no machine state can ever satisfy: rejected at submit, which is
  // itself a scored admission decision (reject vs the machine's capacity).
  sched::JobSpec big;
  big.name = "goliath";
  big.user = "eve";
  big.gpus = 1000;
  const int gid = sch.submit(big);
  art << "goliath: " << sched::to_string(sch.state(gid)) << "\n";

  const sched::RunReport rep = sch.run();
  for (const auto& t : rep.tenants) {
    art << t.name << " wave=" << t.wave << " nodes=" << t.nodes.size() << " ranks=" << t.ranks;
    fmt(art, " p95=%.6f ms", t.p95_ms);
    art << " internode=" << t.internode_bytes << "\n";
  }
  art << "waves=" << rep.waves;
  fmt(art, " makespan=%.6f ms\n", rep.makespan_ms);
  live.publish();
  live.write_snapshot_json(art);
  return art.str();
}

// --- scenario 2: fault-driven demotions -------------------------------------

/// Specialize with every capability available (peer, CUDA-aware MPI), then
/// revoke both mid-run: the next exchange fails down rung by rung, and each
/// demotion is a recorded decision. Artifact = final method histogram.
std::string run_demotion(explain::Ledger* led) {
  std::ostringstream art;
  const sim::Time t_fault = sim::from_seconds(0.25);
  fault::FaultPlan plan;
  plan.disable_cuda_aware(t_fault);
  plan.revoke_peer(t_fault, -1, -1);
  fault::Injector inj(plan);
  Cluster cluster(topo::summit(), 2, 2);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  cluster.set_fault_injector(&inj);
  if (led != nullptr) cluster.set_explain(led);

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, Dim3{48, 48, 48});
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.set_methods(MethodFlags::kAll | MethodFlags::kCudaAwareMpi);
    dd.realize();
    for (int it = 0; it < 2; ++it) {
      ctx.comm.barrier();
      dd.exchange();
    }
    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    for (int it = 0; it < 2; ++it) {
      ctx.comm.barrier();
      dd.exchange();
    }
    if (ctx.rank() == 0) {
      art << "methods after revocation:";
      for (const auto& [m, n] : dd.local_method_histogram())
        art << " " << to_string(m) << "=" << n;
      art << "\n";
    }
  });
  return art.str();
}

// --- scenario 3: recovery-ladder incident -----------------------------------

/// Kill one GPU (= one rank on a pcie box) mid-run; survivors walk the §13
/// ladder — die on the casualty, retire + shrink + rollback on the rest —
/// and every rung taken is a recorded decision.
std::string run_recover(explain::Ledger* led) {
  std::ostringstream art;
  const sim::Time t_fault = sim::from_seconds(0.5);
  fault::FaultPlan plan;
  plan.fail_gpu(t_fault, 1);
  fault::Injector inj(plan);
  Cluster cluster(topo::pcie_box(2), 2, 2);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  cluster.set_fault_injector(&inj);
  if (led != nullptr) cluster.set_explain(led);

  int survivors = 0, casualties = 0;
  recover::RecoveryStats agg;
  constexpr std::int64_t kTotal = 6;
  const sim::Time slice = t_fault / 3;  // fault lands around iteration 3

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, Dim3{32, 32, 32});
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.realize();
    recover::RecoveryManager rm(ctx, dd, /*cadence=*/2);
    std::int64_t it = 0, trip = 0;
    while (it < kTotal) {
      try {
        ctx.engine().sleep_until(slice * trip);
        ++trip;
        rm.maybe_checkpoint(it);
        dd.exchange();
        ++it;
      } catch (const std::exception& e) {
        const auto ev = recover::classify(e, ctx.comm.job(), ctx.rank(), ctx.engine().now());
        if (ev.kind == recover::FailureKind::kNone) throw;
        const std::int64_t back = rm.recover(ev, it);
        if (back == recover::RecoveryManager::kRankGone) {
          ++casualties;
          return;
        }
        it = back;
      }
    }
    ++survivors;
    if (rm.stats().recoveries > agg.recoveries) agg = rm.stats();
  });
  art << "recover: survivors=" << survivors << " casualties=" << casualties
      << " recoveries=" << agg.recoveries << " floor=" << agg.last_floor
      << " retired=" << agg.ranks_retired << "\n";
  return art.str();
}

// --- scenario 4a: what-if vs an actual healthy re-run -----------------------

/// One timed exchange phase; returns the mean per-exchange latency in ms
/// (rank-0 wall of each barrier-bracketed exchange, in virtual time).
double timed_phase(Cluster& cluster, int iters) {
  double sum_ms = 0.0;
  cluster.run([&](RankCtx& ctx) {
    // One rank per node and one quantity give a single inter-node face
    // message per exchange direction — the regime the linear what-if model
    // assumes (no queueing on the shared NIC, wire serial with the plan).
    DistributedDomain dd(ctx, Dim3{96, 96, 96});
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.realize();
    for (int it = 0; it < iters; ++it) {
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      ctx.comm.barrier();
      if (ctx.rank() == 0) sum_ms += (ctx.comm.wtime() - t0) * 1e3;
    }
  });
  return sum_ms / iters;
}

struct WhatIfOutcome {
  double observed_ms = 0.0;   ///< degraded run, measured
  double predicted_ms = 0.0;  ///< what-if engine's healthy estimate
  double actual_ms = 0.0;     ///< healthy re-run, measured
};

WhatIfOutcome run_whatif_healthy(int iters) {
  WhatIfOutcome out;

  // Degraded machine: calibrate healthy floors first (so the watch can
  // price the degradation), then throttle the NIC and measure.
  {
    watch::Watch live;
    Cluster cluster(topo::summit(), 2, 1);
    cluster.set_mem_mode(vgpu::MemMode::kPhantom);
    cluster.set_watch(&live);
    timed_phase(cluster, iters);  // healthy calibration
    live.clear_window();

    fault::FaultPlan plan;
    const sim::Time now = cluster.engine().now();
    plan.degrade_link(now, fault::LinkClass::kNic, 0, -1, 0.02);
    plan.degrade_link(now, fault::LinkClass::kNic, -1, 0, 0.02);
    fault::Injector inj(plan);
    cluster.set_fault_injector(&inj);
    out.observed_ms = timed_phase(cluster, iters);

    std::vector<explain::LaneObservation> lanes;
    for (int s = 0; s < live.num_nodes(); ++s) {
      for (int d = 0; d < live.num_nodes(); ++d) {
        if (s == d) continue;
        for (int c = 0; c < watch::kWireClasses; ++c) {
          const auto wc = static_cast<watch::WireClass>(c);
          const double ns = live.lane_window_actual_ns(s, d, wc);
          if (ns <= 0.0) continue;
          lanes.push_back({s, d, ns, live.live_link_cost_factor(s, d)});
        }
      }
    }
    out.predicted_ms = explain::predict_healthy_exchange_ms(
        out.observed_ms, static_cast<std::uint64_t>(iters), lanes);
  }

  // The ground truth: the same second phase on a machine that never
  // degraded (same calibration phase first, so virtual state matches).
  {
    Cluster cluster(topo::summit(), 2, 1);
    cluster.set_mem_mode(vgpu::MemMode::kPhantom);
    timed_phase(cluster, iters);
    out.actual_ms = timed_phase(cluster, iters);
  }
  return out;
}

// --- self-check plumbing ----------------------------------------------------

struct Check {
  int failures = 0;
  void operator()(bool ok, const std::string& what) {
    std::printf("  %-4s %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, &a)) return 2;

  explain::Ledger ledger(4096);

  std::printf("explain_drill: scenario 1 — multi-tenant on a degraded machine\n");
  const std::string mt_attached = run_multitenant(&ledger);
  std::printf("explain_drill: scenario 2 — capability revocation demotions\n");
  const std::string dm_attached = run_demotion(&ledger);
  std::printf("explain_drill: scenario 3 — recovery-ladder incident\n");
  const std::string rc_attached = run_recover(&ledger);
  std::printf("%s", rc_attached.c_str());

  std::printf("explain_drill: scenario 1-3 detached re-runs (byte-identity)\n");
  const std::string mt_detached = run_multitenant(nullptr);
  const std::string dm_detached = run_demotion(nullptr);
  const std::string rc_detached = run_recover(nullptr);

  std::printf("explain_drill: scenario 4 — what-if analysis\n");
  const WhatIfOutcome wi = run_whatif_healthy(/*iters=*/4);
  const double err = wi.actual_ms > 0.0 ? std::abs(wi.predicted_ms - wi.actual_ms) / wi.actual_ms
                                        : 1.0;
  std::printf("  degraded %.4f ms/exchange, predicted healthy %.4f ms, actual healthy %.4f ms "
              "(error %.1f%%)\n",
              wi.observed_ms, wi.predicted_ms, wi.actual_ms, err * 100.0);

  // Placement re-scoring: the first placement record whose chosen option
  // was the solver's argmin, re-scored under (a) the identity perturbation
  // (must agree with the recorded objective bit-exactly) and (b) a heavy
  // asymmetric degradation of GPU 0's links.
  const explain::DecisionRecord* prec = nullptr;
  for (const auto& r : ledger.records()) {
    if (r.kind == explain::DecisionKind::kPlacement && r.evidence != nullptr &&
        r.score_delta() >= 0.0) {
      prec = &r;
      break;
    }
  }
  bool rescore_identity_ok = false;
  if (prec != nullptr) {
    const auto same = explain::rescore_placement(*prec, [](int, int) { return 1.0; });
    rescore_identity_ok = !same.flipped && same.chosen_cost == prec->chosen_score;
    const auto hit = explain::rescore_placement(
        *prec, [](int i, int j) { return i == 0 || j == 0 ? 8.0 : 1.0; });
    std::printf("  placement #%llu under 8x cost on GPU 0 links: winner %s (delta %.4g)\n",
                static_cast<unsigned long long>(prec->id), hit.winner.c_str(), hit.delta);
  }

  std::printf("\nprovenance: %llu decisions recorded\n",
              static_cast<unsigned long long>(ledger.total_recorded()));
  for (int k = 0; k < explain::kDecisionKinds; ++k) {
    const auto kind = static_cast<explain::DecisionKind>(k);
    if (ledger.recorded_of(kind) == 0) continue;
    std::printf("  %-16s x%llu\n", to_string(kind),
                static_cast<unsigned long long>(ledger.recorded_of(kind)));
  }
  if (a.report) {
    std::ostringstream rep;
    ledger.write_report(rep);
    if (a.report_path.empty()) {
      std::printf("\n");
      std::fputs(rep.str().c_str(), stdout);
    } else {
      std::ofstream os(a.report_path);
      os << rep.str();
      std::printf("decision report written to %s\n", a.report_path.c_str());
    }
  }
  if (!a.json_path.empty()) {
    std::ofstream os(a.json_path);
    ledger.write_json(os, "drill");
    std::printf("explain-v1 document written to %s\n", a.json_path.c_str());
  }

  if (!a.expect) return 0;

  // --- self-checks ----------------------------------------------------------
  std::printf("\nself-checks:\n");
  Check check;
  using K = explain::DecisionKind;
  check(ledger.recorded_of(K::kPartition) >= 1, "partition decisions recorded");
  check(ledger.recorded_of(K::kPlacement) >= 1, "placement decisions recorded");
  check(ledger.recorded_of(K::kSpecialization) >= 1, "specialization decisions recorded");
  check(ledger.recorded_of(K::kDemotion) >= 1, "fault demotions recorded");
  check(ledger.recorded_of(K::kPlanCompile) >= 1, "plan compiles recorded");
  check(ledger.recorded_of(K::kSchedAdmission) >= 4,
        "admission verdicts recorded (3 admits + 1 reject)");
  check(ledger.recorded_of(K::kSchedPlacement) >= 3, "sched placements recorded");
  check(ledger.recorded_of(K::kRecoverStep) >= 2, "recovery ladder steps recorded");

  bool reject_seen = false;
  bool complete = true;
  for (const auto& r : ledger.records()) {
    if (r.kind == K::kSchedAdmission && r.chosen.rfind("reject", 0) == 0) reject_seen = true;
    const bool must_justify = r.kind == K::kDemotion || r.kind == K::kPlacement ||
                              r.kind == K::kSchedAdmission || r.kind == K::kSchedPlacement ||
                              r.kind == K::kRecoverStep || r.kind == K::kPartition ||
                              r.kind == K::kSpecialization || r.kind == K::kPlanCompile;
    if (must_justify && (r.chosen.empty() || r.rejected.empty())) {
      std::printf("  incomplete record #%llu (%s %s)\n",
                  static_cast<unsigned long long>(r.id), to_string(r.kind), r.subject.c_str());
      complete = false;
    }
  }
  check(reject_seen, "the impossible job's rejection is on the record");
  check(complete, "every decision names its chosen option and a rejected alternative");

  check(mt_attached == mt_detached, "multi-tenant artifacts byte-identical when detached");
  check(dm_attached == dm_detached, "demotion artifacts byte-identical when detached");
  check(rc_attached == rc_detached, "recovery artifacts byte-identical when detached");

  check(prec != nullptr, "a placement record carries re-scorable evidence");
  check(rescore_identity_ok, "identity what-if reproduces the recorded objective");
  check(wi.observed_ms > wi.actual_ms, "degraded run measurably slower than healthy");
  {
    char line[128];
    std::snprintf(line, sizeof(line), "what-if healthy prediction within %.0f%% (error %.1f%%)",
                  a.tolerance * 100.0, err * 100.0);
    check(err <= a.tolerance, line);
  }

  if (check.failures != 0) {
    std::fprintf(stderr, "explain_drill: %d self-check(s) failed\n", check.failures);
    return 1;
  }
  std::printf("all self-checks passed\n");
  return 0;
}
