// Quickstart: the smallest complete program using the library's public API.
//
// Builds a simulated 2-node Summit-like cluster with 3 MPI ranks per node,
// creates a distributed 3D domain with two quantities, lets the library
// partition / place / specialize it, runs a few halo exchanges, and prints
// what the setup decided and what the exchanges cost (in simulated time).
#include <cstdio>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

int main() {
  // The "machine": 2 Summit-style nodes (2 sockets x 3 V100s each), with
  // 3 ranks per node, i.e. 2 GPUs per rank.
  stencil::Cluster cluster(stencil::topo::summit(), /*nodes=*/2, /*ranks_per_node=*/3);

  cluster.run([&](stencil::RankCtx& ctx) {
    // Each rank runs this body, exactly like an MPI program's main().
    stencil::DistributedDomain dd(ctx, {256, 256, 256});
    dd.set_radius(2);
    dd.add_data<float>("pressure");
    dd.add_data<float>("temperature");
    dd.set_methods(stencil::MethodFlags::kAll);          // let it specialize
    dd.set_placement(stencil::PlacementStrategy::kNodeAware);
    dd.realize();

    if (ctx.rank() == 0) {
      std::printf("domain %s over %d nodes x %d GPUs -> index space %s\n",
                  dd.domain().str().c_str(), ctx.machine.num_nodes(),
                  ctx.machine.gpus_per_node(),
                  dd.placement().partition().global_extent().str().c_str());
      std::printf("rank 0 owns %zu subdomains:\n", dd.num_subdomains());
      dd.for_each_subdomain([](stencil::LocalDomain& ld) {
        std::printf("  subdomain %s size %s on gpu%d\n", ld.index().str().c_str(),
                    ld.size().str().c_str(), ld.gpu());
      });
      std::printf("rank 0 transfer methods:\n");
      for (const auto& [method, count] : dd.local_method_histogram()) {
        std::printf("  %-16s x%d\n", to_string(method), count);
      }
    }

    // Initialize the interior, then exchange halos a few times.
    dd.for_each_subdomain([](stencil::LocalDomain& ld) {
      auto p = ld.view<float>(0);
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x) p(x, y, z) = 1.0f;
    });

    for (int it = 0; it < 3; ++it) {
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      ctx.comm.barrier();
      if (ctx.rank() == 0) {
        std::printf("exchange %d: %.3f ms (simulated)\n", it, (ctx.comm.wtime() - t0) * 1e3);
      }
    }
  });

  std::printf("quickstart done\n");
  return 0;
}
