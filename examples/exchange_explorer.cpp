// exchange_explorer: a command-line driver for running any exchange
// configuration without writing code — the tool you reach for when asking
// "what would this domain cost on that machine with those methods?".
//
// Usage:
//   exchange_explorer [options]
//     --arch summit|dgx|pcie     node archetype            (default summit)
//     --nodes N                  number of nodes           (default 1)
//     --rpn N                    ranks per node            (default 6)
//     --domain X[,Y,Z]           grid extents              (default 1363)
//     --radius R                 halo width                (default 3)
//     --quantities N             SP quantities             (default 4)
//     --methods staged|ca|all|allca                        (default all)
//     --placement aware|measured|trivial|worst             (default aware)
//     --boundary periodic|fixed                            (default periodic)
//     --pack kernel|3d|auto                                (default kernel)
//     --aggregate                aggregate STAGED messages (default off)
//     --persistent               planned exchanges: compile once, replay (default off)
//     --iters N                  measured exchanges        (default 3)
//     --csv                      emit one CSV row instead of prose
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common_cli.h"

int main(int argc, char** argv) {
  stencil::cli::Options opt;
  std::string err;
  if (!stencil::cli::parse(argc, argv, &opt, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  if (opt.help) {
    stencil::cli::print_usage("exchange_explorer");
    return 0;
  }

  const auto r = stencil::cli::run_config(opt);

  if (opt.csv) {
    std::printf("arch,nodes,rpn,domain,radius,quantities,methods,placement,boundary,pack,"
                "aggregate,persistent,exchange_ms\n");
    std::printf("%s,%d,%d,%lldx%lldx%lld,%d,%d,%s,%s,%s,%s,%d,%d,%.6f\n", opt.arch_name.c_str(),
                opt.nodes, opt.rpn, static_cast<long long>(opt.domain.x),
                static_cast<long long>(opt.domain.y), static_cast<long long>(opt.domain.z),
                opt.radius, opt.quantities, opt.methods_name.c_str(), opt.placement_name.c_str(),
                to_string(opt.boundary), to_string(opt.pack), opt.aggregate ? 1 : 0,
                opt.persistent ? 1 : 0, r.exchange_ms);
    return 0;
  }

  std::printf("configuration: %s, %dn/%dr/%dg, domain %s, radius %d, %d quantities\n",
              opt.arch_name.c_str(), opt.nodes, opt.rpn, r.gpus_per_node,
              opt.domain.str().c_str(), opt.radius, opt.quantities);
  std::printf("  methods=%s placement=%s boundary=%s pack=%s aggregate=%s persistent=%s\n",
              opt.methods_name.c_str(), opt.placement_name.c_str(), to_string(opt.boundary),
              to_string(opt.pack), opt.aggregate ? "on" : "off", opt.persistent ? "on" : "off");
  std::printf("partition: %s nodes x %s GPUs -> %s subdomains of ~%s\n",
              r.node_extent.str().c_str(), r.gpu_extent.str().c_str(),
              r.global_extent.str().c_str(), r.subdomain_size.str().c_str());
  std::printf("rank 0 transfers:");
  for (const auto& [m, n] : r.rank0_methods) std::printf(" %s x%d", to_string(m), n);
  std::printf("\nexchange time (max over ranks, avg of %d): %.3f ms (simulated)\n", opt.iters,
              r.exchange_ms);
  return 0;
}
