// plan_report: introspect the three-phase setup for a configuration —
// what the partitioner decided, which subdomain landed on which GPU and
// why (flow/distance matrices, QAP cost per strategy), how every transfer
// was specialized (counts and payload bytes from the *realized* plan,
// after any runtime demotions), and — with --persistent — the compiled
// exchange plans and their reuse/invalidation counters. The debugging
// companion to exchange_explorer.
//
// Usage: same options as exchange_explorer.
#include <cstdio>

#include "common_cli.h"
#include "core/exchange.h"

int main(int argc, char** argv) {
  stencil::cli::Options opt;
  std::string err;
  if (!stencil::cli::parse(argc, argv, &opt, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  if (opt.help) {
    stencil::cli::print_usage("plan_report");
    return 0;
  }

  std::size_t bytes_per_point = static_cast<std::size_t>(opt.quantities) * 4;
  stencil::HierarchicalPartition hp(opt.domain, opt.nodes, opt.arch.gpus_per_node());

  std::printf("== partition ==\n");
  std::printf("domain %s over %d nodes x %d GPUs\n", opt.domain.str().c_str(), opt.nodes,
              opt.arch.gpus_per_node());
  std::printf("node index space %s, GPU index space %s, global %s\n",
              hp.node_extent().str().c_str(), hp.gpu_extent().str().c_str(),
              hp.global_extent().str().c_str());
  std::printf("subdomain [0,0,0]: size %s origin %s\n",
              hp.subdomain_size({0, 0, 0}).str().c_str(),
              hp.subdomain_origin({0, 0, 0}).str().c_str());
  std::printf("inter-node exchange volume (radius %d): %lld points (%.1f%% of total)\n",
              opt.radius, static_cast<long long>(hp.internode_exchange_volume(opt.radius)),
              100.0 * static_cast<double>(hp.internode_exchange_volume(opt.radius)) /
                  static_cast<double>(hp.total_exchange_volume(opt.radius)));

  std::printf("\n== placement (node 0) ==\n");
  stencil::Placement placement(hp, opt.arch, opt.radius, bytes_per_point,
                               stencil::Neighborhood::kFull, opt.placement, opt.boundary);
  const auto w = placement.node_flow(0);
  std::printf("flow matrix (MiB moved per exchange between subdomains):\n");
  for (int i = 0; i < w.n(); ++i) {
    std::printf("  s%-2d", i);
    for (int j = 0; j < w.n(); ++j) std::printf(" %8.1f", w.at(i, j) / (1 << 20));
    std::printf("\n");
  }
  std::printf("assignment (subdomain -> local GPU) under each strategy, with QAP cost:\n");
  for (const auto strat :
       {stencil::PlacementStrategy::kNodeAware, stencil::PlacementStrategy::kMeasured,
        stencil::PlacementStrategy::kTrivial, stencil::PlacementStrategy::kWorst}) {
    stencil::Placement p(hp, opt.arch, opt.radius, bytes_per_point, stencil::Neighborhood::kFull,
                         strat, opt.boundary);
    std::printf("  %-11s cost %.4g  map:", to_string(strat), p.total_cost());
    for (std::int64_t s = 0; s < hp.gpu_extent().volume(); ++s) {
      const stencil::Dim3 gidx =
          hp.global_index({0, 0, 0}, stencil::Dim3::from_linear(s, hp.gpu_extent()));
      std::printf(" s%lld->g%d", static_cast<long long>(s), p.local_gpu_of(gidx));
    }
    std::printf("\n");
  }

  std::printf("\n== specialization ==\n");
  const auto plan = stencil::ExchangePlan::full(placement, opt.rpn, opt.methods,
                                                stencil::Neighborhood::kFull, opt.boundary);
  std::printf("%zu transfers total:\n", plan.transfers().size());
  for (const auto& [m, n] : plan.method_histogram()) {
    std::printf("  %-16s x%d\n", to_string(m), n);
  }
  std::size_t internode = 0;
  for (const auto& t : plan.transfers()) {
    if (t.src_gpu / opt.arch.gpus_per_node() != t.dst_gpu / opt.arch.gpus_per_node()) {
      ++internode;
    }
  }
  std::printf("  (%zu cross node boundaries)\n", internode);

  // The static plan above is what realize() *chooses*; the realized transfer
  // set is what rank 0 actually runs, with per-method payload bytes.
  const auto r = stencil::cli::run_config(opt);
  std::printf("\n== realized transfers (rank 0) ==\n");
  for (const auto& [m, cb] : r.rank0_method_bytes) {
    std::printf("  %-16s x%-3d %10zu B per exchange\n", to_string(m), cb.first, cb.second);
  }
  if (opt.persistent) {
    std::printf("\n== compiled plans (rank 0) ==\n%s  %s\n", r.rank0_plan_dump.c_str(),
                r.rank0_plan_stats.c_str());
  }
  return 0;
}
