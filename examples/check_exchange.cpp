// check_exchange: run a fully-checked halo exchange and print the
// happens-before report.
//
//   check_exchange --nodes 2 --rpn 2 --domain 48 --iters 3
//   check_exchange --drill all --methods cuda     # checked fault demotion
//   check_exchange --seed-race                    # demo: plant a race, see it caught
//
// A check::Checker observes every runtime op, event edge, and MPI request of
// the run and rebuilds the happens-before order; any unordered conflicting
// access or API misuse becomes a finding. A healthy exchange must come back
// clean — the tool exits non-zero on findings (or, with --seed-race, on the
// planted race *not* being caught), and on any halo mismatch.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/checker.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "topo/archetype.h"

using namespace stencil;
namespace fault = stencil::fault;
namespace check = stencil::check;

namespace {

float ref_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = ref_value({o.x + x, o.y + y, o.z + z}, q);
    }
  });
}

std::int64_t check_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq) {
  std::int64_t bad = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z)
        for (std::int64_t y = -r; y < sz.y + r; ++y)
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            if (x >= 0 && x < sz.x && y >= 0 && y < sz.y && z >= 0 && z < sz.z) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            bad += v(x, y, z) != ref_value(g, q);
          }
    }
  });
  return bad;
}

struct Args {
  int nodes = 1;
  int rpn = 2;
  std::int64_t edge = 48;
  int radius = 1;
  int iters = 2;
  std::string methods = "all";  // all | cuda | staged
  std::string drill = "none";   // none | peer | ipc | cuda | all
  double fault_s = 1.0;
  bool seed_race = false;
};

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "check_exchange: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (f == "--nodes" && (v = next("--nodes"))) a->nodes = std::atoi(v);
    else if (f == "--rpn" && (v = next("--rpn"))) a->rpn = std::atoi(v);
    else if (f == "--domain" && (v = next("--domain"))) a->edge = std::atoll(v);
    else if (f == "--radius" && (v = next("--radius"))) a->radius = std::atoi(v);
    else if (f == "--iters" && (v = next("--iters"))) a->iters = std::atoi(v);
    else if (f == "--methods" && (v = next("--methods"))) a->methods = v;
    else if (f == "--drill" && (v = next("--drill"))) a->drill = v;
    else if (f == "--fault-at" && (v = next("--fault-at"))) a->fault_s = std::atof(v);
    else if (f == "--seed-race") a->seed_race = true;
    else if (f == "--help") {
      std::printf(
          "usage: check_exchange [--nodes N] [--rpn R] [--domain EDGE] [--radius R]\n"
          "                      [--iters N] [--methods all|cuda|staged]\n"
          "                      [--drill none|peer|ipc|cuda|all] [--fault-at SECONDS]\n"
          "                      [--seed-race]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "check_exchange: unknown flag '%s' (try --help)\n", f.c_str());
      return false;
    }
    if (v == nullptr && f != "--seed-race") return false;
  }
  return true;
}

MethodFlags flags_for(const std::string& m) {
  if (m == "cuda") return MethodFlags::kAllCudaAware | MethodFlags::kStaged;
  if (m == "staged") return MethodFlags::kStaged | MethodFlags::kPeer | MethodFlags::kKernel;
  return MethodFlags::kAll;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, &a)) return 2;
  if (a.methods != "all" && a.methods != "cuda" && a.methods != "staged") {
    std::fprintf(stderr, "check_exchange: unknown methods '%s' (try --help)\n",
                 a.methods.c_str());
    return 2;
  }
  const Dim3 domain{a.edge, a.edge, a.edge};
  constexpr std::size_t kQuantities = 2;
  const sim::Time t_fault = sim::from_seconds(a.fault_s);

  fault::FaultPlan plan;
  const bool all = a.drill == "all";
  if (all || a.drill == "peer") plan.revoke_peer(t_fault, -1, -1);
  if (all || a.drill == "ipc") plan.invalidate_ipc(t_fault);
  if (all || a.drill == "cuda") plan.disable_cuda_aware(t_fault);
  if (plan.events().empty() && a.drill != "none") {
    std::fprintf(stderr, "check_exchange: unknown drill '%s' (try --help)\n", a.drill.c_str());
    return 2;
  }
  fault::Injector inj(plan);

  Cluster cluster(topo::summit(), a.nodes, a.rpn);
  check::Checker checker(cluster.engine());
  cluster.set_checker(&checker);
  if (inj.active()) cluster.set_fault_injector(&inj);

  std::printf("check_exchange: %dn/%dr, domain %s, methods %s, drill %s%s\n", a.nodes, a.rpn,
              domain.str().c_str(), a.methods.c_str(), a.drill.c_str(),
              a.seed_race ? ", seeded race" : "");
  std::int64_t halo_errors = 0;
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(a.radius);
    for (std::size_t q = 0; q < kQuantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(flags_for(a.methods));
    dd.realize();

    auto epoch = [&](const char* tag) {
      for (int it = 0; it < a.iters; ++it) {
        fill(dd, kQuantities);
        ctx.comm.barrier();
        if (a.seed_race && it == 0) {
          // Deliberate bug: overlap a "compute" kernel that touches the
          // whole field (halo included) with the in-flight exchange. The
          // checker must name it in a race finding.
          dd.exchange_start();
          dd.for_each_subdomain([&](LocalDomain& ld) {
            vgpu::AccessList acc;
            const std::size_t bytes =
                static_cast<std::size_t>(ld.storage().volume()) * sizeof(float);
            acc.push_back({&ld.data(0), 0, bytes, true});
            ctx.rt.launch_kernel(ld.compute_stream(), bytes, "seeded compute", [] {}, acc);
          });
          dd.exchange_finish();
          dd.compute_synchronize();
        } else {
          dd.exchange();
        }
        ctx.comm.barrier();
        halo_errors += check_halos(dd, domain, kQuantities);
        (void)tag;
      }
    };
    epoch("healthy");
    if (inj.active()) {
      ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
      ctx.comm.barrier();
      epoch("degraded");
    }
  });

  std::printf("report: %s\n", checker.report().summary().c_str());
  if (!checker.report().clean()) checker.report().write(std::cout);
  if (halo_errors != 0) {
    std::fprintf(stderr, "check_exchange: %lld halo mismatches\n",
                 static_cast<long long>(halo_errors));
    return 1;
  }
  if (a.seed_race) {
    bool named = false;
    for (const auto& f : checker.report().findings()) {
      named = named || f.first.find("seeded compute") != std::string::npos ||
              f.second.find("seeded compute") != std::string::npos;
    }
    if (!named) {
      std::fprintf(stderr, "check_exchange: seeded race was NOT detected\n");
      return 1;
    }
    std::printf("seeded race detected, as it should be.\n");
    return 0;
  }
  if (!checker.report().clean()) return 1;
  std::printf("exchange is race-free under the happens-before checker.\n");
  return 0;
}
