#include "common_cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace stencil::cli {

bool parse_trace_flag(int argc, char** argv, int* i, TraceOptions* t, std::string* err) {
  const std::string a = argv[*i];
  if (a != "--trace-out" && a != "--trace-merge") return false;
  if (*i + 1 >= argc) {
    *err = "missing value for " + a;
    return true;
  }
  const std::string v = argv[++*i];
  (a == "--trace-out" ? t->out : t->merge) = v;
  return true;
}

void print_trace_usage() {
  std::printf(
      "  --trace-out FILE            merged chrome trace with cross-rank flow arrows\n"
      "  --trace-merge PREFIX        per-rank trace documents PREFIX.rankN.json\n");
}

bool write_trace_outputs(const dtrace::Collector& c, const TraceOptions& t, std::string* err) {
  if (!t.out.empty()) {
    std::ofstream f(t.out);
    if (!f) {
      *err = "cannot open " + t.out;
      return false;
    }
    c.write_merged_chrome_trace(f);
  }
  if (!t.merge.empty()) {
    for (int r = -1; r <= c.max_rank(); ++r) {
      const std::string path =
          t.merge + (r < 0 ? std::string(".shared") : ".rank" + std::to_string(r)) + ".json";
      std::ofstream f(path);
      if (!f) {
        *err = "cannot open " + path;
        return false;
      }
      c.write_rank_json(f, r);
    }
  }
  return true;
}

namespace {

bool parse_domain(const std::string& s, Dim3* out) {
  long long x = 0, y = 0, z = 0;
  const int n = std::sscanf(s.c_str(), "%lld,%lld,%lld", &x, &y, &z);
  if (n == 1) {
    *out = {x, x, x};
    return x > 0;
  }
  if (n == 3) {
    *out = {x, y, z};
    return x > 0 && y > 0 && z > 0;
  }
  return false;
}

}  // namespace

void print_usage(const char* tool) {
  std::printf(
      "usage: %s [options]\n"
      "  --arch summit|dgx|pcie      node archetype            (default summit)\n"
      "  --nodes N                   number of nodes           (default 1)\n"
      "  --rpn N                     ranks per node            (default 6)\n"
      "  --domain X[,Y,Z]            grid extents              (default 1363)\n"
      "  --radius R                  halo width                (default 3)\n"
      "  --quantities N              SP quantities             (default 4)\n"
      "  --methods staged|ca|all|allca                         (default all)\n"
      "  --placement aware|measured|trivial|worst              (default aware)\n"
      "  --boundary periodic|fixed                             (default periodic)\n"
      "  --pack kernel|3d|auto                                 (default kernel)\n"
      "  --aggregate                 aggregate STAGED messages (default off)\n"
      "  --persistent                planned exchanges: compile once, replay (default off)\n"
      "  --iters N                   measured exchanges        (default 3)\n"
      "  --csv                       machine-readable output\n",
      tool);
}

bool parse(int argc, char** argv, Options* opt, std::string* err) {
  const auto need_value = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string { return argv[++i]; };
    if (a == "--help" || a == "-h") {
      opt->help = true;
      return true;
    }
    if (a == "--csv") {
      opt->csv = true;
      continue;
    }
    if (a == "--aggregate") {
      opt->aggregate = true;
      continue;
    }
    if (a == "--persistent") {
      opt->persistent = true;
      continue;
    }
    if (!need_value(i)) {
      *err = "missing value for " + a;
      return false;
    }
    if (a == "--arch") {
      opt->arch_name = value();
      if (opt->arch_name == "summit") {
        opt->arch = topo::summit();
      } else if (opt->arch_name == "dgx") {
        opt->arch = topo::dgx_like();
      } else if (opt->arch_name == "pcie") {
        opt->arch = topo::pcie_box();
      } else {
        *err = "unknown arch '" + opt->arch_name + "'";
        return false;
      }
    } else if (a == "--nodes") {
      opt->nodes = std::atoi(value().c_str());
    } else if (a == "--rpn") {
      opt->rpn = std::atoi(value().c_str());
    } else if (a == "--domain") {
      if (!parse_domain(value(), &opt->domain)) {
        *err = "bad --domain (use X or X,Y,Z)";
        return false;
      }
    } else if (a == "--radius") {
      opt->radius = std::atoi(value().c_str());
    } else if (a == "--quantities") {
      opt->quantities = std::atoi(value().c_str());
    } else if (a == "--methods") {
      opt->methods_name = value();
      if (opt->methods_name == "staged") {
        opt->methods = MethodFlags::kStaged;
      } else if (opt->methods_name == "ca") {
        opt->methods = MethodFlags::kStaged | MethodFlags::kCudaAwareMpi;
      } else if (opt->methods_name == "all") {
        opt->methods = MethodFlags::kAll;
      } else if (opt->methods_name == "allca") {
        opt->methods = MethodFlags::kAllCudaAware;
      } else {
        *err = "unknown methods '" + opt->methods_name + "'";
        return false;
      }
    } else if (a == "--placement") {
      opt->placement_name = value();
      if (opt->placement_name == "aware") {
        opt->placement = PlacementStrategy::kNodeAware;
      } else if (opt->placement_name == "measured") {
        opt->placement = PlacementStrategy::kMeasured;
      } else if (opt->placement_name == "trivial") {
        opt->placement = PlacementStrategy::kTrivial;
      } else if (opt->placement_name == "worst") {
        opt->placement = PlacementStrategy::kWorst;
      } else {
        *err = "unknown placement '" + opt->placement_name + "'";
        return false;
      }
    } else if (a == "--boundary") {
      const std::string v = value();
      if (v == "periodic") {
        opt->boundary = Boundary::kPeriodic;
      } else if (v == "fixed") {
        opt->boundary = Boundary::kFixed;
      } else {
        *err = "unknown boundary '" + v + "'";
        return false;
      }
    } else if (a == "--pack") {
      const std::string v = value();
      if (v == "kernel") {
        opt->pack = PackMode::kKernel;
      } else if (v == "3d") {
        opt->pack = PackMode::kMemcpy3D;
      } else if (v == "auto") {
        opt->pack = PackMode::kAuto;
      } else {
        *err = "unknown pack mode '" + v + "'";
        return false;
      }
    } else if (a == "--iters") {
      opt->iters = std::atoi(value().c_str());
    } else {
      *err = "unknown option '" + a + "'";
      return false;
    }
  }
  if (opt->nodes < 1 || opt->rpn < 1 || opt->radius < 1 || opt->quantities < 1 ||
      opt->iters < 1) {
    *err = "counts must be positive";
    return false;
  }
  if (opt->arch.gpus_per_node() % opt->rpn != 0) {
    *err = "--rpn must divide " + std::to_string(opt->arch.gpus_per_node()) + " GPUs per node";
    return false;
  }
  return true;
}

RunResult run_config(const Options& opt) {
  RunResult out;
  out.gpus_per_node = opt.arch.gpus_per_node();
  Cluster cluster(opt.arch, opt.nodes, opt.rpn);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  std::vector<double> per_rank(static_cast<std::size_t>(opt.nodes) * opt.rpn, 0.0);

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, opt.domain);
    dd.set_radius(opt.radius);
    for (int q = 0; q < opt.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(opt.methods);
    dd.set_placement(opt.placement);
    dd.set_boundary(opt.boundary);
    dd.set_pack_mode(opt.pack);
    dd.set_remote_aggregation(opt.aggregate);
    dd.set_persistent(opt.persistent);
    dd.realize();

    if (ctx.rank() == 0) {
      const auto& hp = dd.placement().partition();
      out.node_extent = hp.node_extent();
      out.gpu_extent = hp.gpu_extent();
      out.global_extent = hp.global_extent();
      out.subdomain_size = hp.subdomain_size({0, 0, 0});
      out.rank0_methods = dd.local_method_histogram();
    }

    ctx.comm.barrier();
    dd.exchange();  // warm-up
    double total = 0.0;
    for (int it = 0; it < opt.iters; ++it) {
      ctx.comm.barrier();
      const double t0 = ctx.comm.wtime();
      dd.exchange();
      total += ctx.comm.wtime() - t0;
    }
    per_rank[static_cast<std::size_t>(ctx.rank())] = total / opt.iters;

    if (ctx.rank() == 0) {
      out.rank0_method_bytes = dd.method_bytes_histogram();
      if (opt.persistent) {
        std::ostringstream os;
        for (const auto& p : dd.plan_cache().entries()) p->describe(os);
        out.rank0_plan_dump = os.str();
        out.rank0_plan_stats = dd.plan_stats().str();
      }
    }
  });

  out.exchange_ms = *std::max_element(per_rank.begin(), per_rank.end()) * 1e3;
  return out;
}

}  // namespace stencil::cli
