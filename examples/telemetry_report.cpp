// telemetry_report: run an end-to-end halo exchange under full telemetry and
// print what the observability layer sees — per-method message/byte tables,
// the critical chain through one recorded exchange with per-hop durations,
// overlap efficiency, and the bottleneck-lane ranking (DESIGN.md §11).
//
//   telemetry_report --preset summit
//   telemetry_report --preset dgx --nodes 1 --rpn 2
//   telemetry_report --prom metrics.prom --json report.json
//   telemetry_report --trace-out merged.json --trace-merge rankdocs
//
// Three configurations run back to back so all five methods appear: the
// default flag set (staged | colocated | peer), a CUDA-aware set that
// specializes inter-node transfers to cuda-aware-mpi, and a single-rank
// shape whose self-wrapping decomposition exercises kernel. Each config
// verifies its halos bit-exactly against the analytic fill — telemetry is
// pure bookkeeping and must not perturb the exchange. The run is also
// checked: the happens-before edges the checker derives feed the
// critical-path analyzer, replacing timeline heuristics with the real sync
// structure, and the recorded exchange runs under a dtrace::Collector so
// message edges (flow arrows) join the analysis and --trace-out /
// --trace-merge emit the merged / per-rank causal trace (DESIGN.md §12).
// Exits non-zero on halo mismatch or checker findings.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "check/checker.h"
#include "common_cli.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "dtrace/collector.h"
#include "telemetry/telemetry.h"
#include "topo/archetype.h"

using namespace stencil;
namespace check = stencil::check;
namespace telemetry = stencil::telemetry;

namespace {

float ref_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = ref_value({o.x + x, o.y + y, o.z + z}, q);
    }
  });
}

std::int64_t check_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq) {
  std::int64_t bad = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z)
        for (std::int64_t y = -r; y < sz.y + r; ++y)
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            if (x >= 0 && x < sz.x && y >= 0 && y < sz.y && z >= 0 && z < sz.z) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            bad += v(x, y, z) != ref_value(g, q);
          }
    }
  });
  return bad;
}

struct Args {
  std::string preset = "summit";  // summit | dgx | pcie
  int nodes = 2;
  int rpn = 2;
  std::int64_t edge = 48;
  int radius = 1;
  std::size_t quantities = 2;
  std::string prom_file;    // Prometheus text exposition
  std::string json_file;    // full JSON report (metrics + critical path)
  cli::TraceOptions trace;  // --trace-out / --trace-merge (shared flags)
};

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string terr;
    if (cli::parse_trace_flag(argc, argv, &i, &a->trace, &terr)) {
      if (!terr.empty()) {
        std::fprintf(stderr, "telemetry_report: %s\n", terr.c_str());
        return false;
      }
      continue;
    }
    const std::string f = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "telemetry_report: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (f == "--preset" && (v = next("--preset"))) a->preset = v;
    else if (f == "--nodes" && (v = next("--nodes"))) a->nodes = std::atoi(v);
    else if (f == "--rpn" && (v = next("--rpn"))) a->rpn = std::atoi(v);
    else if (f == "--domain" && (v = next("--domain"))) a->edge = std::atoll(v);
    else if (f == "--radius" && (v = next("--radius"))) a->radius = std::atoi(v);
    else if (f == "--quantities" && (v = next("--quantities")))
      a->quantities = static_cast<std::size_t>(std::atoll(v));
    else if (f == "--prom" && (v = next("--prom"))) a->prom_file = v;
    else if (f == "--json" && (v = next("--json"))) a->json_file = v;
    else if (f == "--help") {
      std::printf(
          "usage: telemetry_report [--preset summit|dgx|pcie] [--nodes N] [--rpn R]\n"
          "                        [--domain EDGE] [--radius R] [--quantities Q]\n"
          "                        [--prom FILE] [--json FILE]\n");
      cli::print_trace_usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "telemetry_report: unknown flag '%s' (try --help)\n", f.c_str());
      return false;
    }
    if (v == nullptr) return false;
  }
  return true;
}

topo::NodeArchetype arch_for(const std::string& preset) {
  if (preset == "dgx") return topo::dgx_like();
  if (preset == "pcie") return topo::pcie_box();
  return topo::summit();
}

struct Config {
  const char* name;
  MethodFlags flags;
  int nodes = 0;  // 0: use the --nodes/--rpn shape
  int rpn = 0;
};

constexpr const char* kMethodNames[] = {"kernel", "peer", "colocated", "cuda-aware-mpi",
                                        "staged"};

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, &a)) return 2;
  if (a.preset != "summit" && a.preset != "dgx" && a.preset != "pcie") {
    std::fprintf(stderr, "telemetry_report: unknown preset '%s' (try --help)\n",
                 a.preset.c_str());
    return 2;
  }
  const Dim3 domain{a.edge, a.edge, a.edge};

  // Three configs so every method appears in the merged table: the default
  // flag set (staged/colocated/peer), a CUDA-aware set where the specializer
  // picks cuda-aware-mpi over staged for inter-node transfers, and a
  // single-rank shape whose decomposition self-wraps — the only geometry
  // that produces same-GPU (kernel) transfers.
  const Config configs[] = {
      {"all", MethodFlags::kAll},
      {"cuda-aware", MethodFlags::kAllCudaAware | MethodFlags::kStaged},
      {"self", MethodFlags::kAll, 1, 1},
  };

  std::printf("telemetry_report: preset %s, %dn/%dr, domain %s, radius %d, %zu quantities\n",
              a.preset.c_str(), a.nodes, a.rpn, domain.str().c_str(), a.radius, a.quantities);

  telemetry::MetricsRegistry merged;  // all ranks, all configs
  std::int64_t halo_errors = 0;
  int findings = 0;
  telemetry::Analysis last_analysis;
  dtrace::Collector trace_out;  // the "all" config's trace: the one that crosses ranks

  for (const Config& cfg : configs) {
    Cluster cluster(arch_for(a.preset), cfg.nodes ? cfg.nodes : a.nodes,
                    cfg.rpn ? cfg.rpn : a.rpn);
    check::Checker checker(cluster.engine());
    cluster.set_checker(&checker);
    telemetry::Telemetry substrate;  // GPU-op / MPI metrics, cluster-wide
    cluster.set_telemetry(&substrate);
    dtrace::Collector rec;

    std::map<Method, std::pair<int, std::size_t>> xfer_set;  // rank 0's realized transfers

    cluster.run([&](RankCtx& ctx) {
      DistributedDomain dd(ctx, domain);
      dd.set_radius(a.radius);
      for (std::size_t q = 0; q < a.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
      dd.set_methods(cfg.flags);
      dd.realize();
      if (ctx.rank() == 0) xfer_set = dd.method_bytes_histogram();

      // Warm-up exchange (allocation and IPC setup out of the trace), then
      // record exactly one eager exchange for the critical-path analysis.
      fill(dd, a.quantities);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      halo_errors += check_halos(dd, domain, a.quantities);

      if (ctx.rank() == 0) cluster.set_collector(&rec);
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      if (ctx.rank() == 0) cluster.set_recorder(nullptr);
      halo_errors += check_halos(dd, domain, a.quantities);

      // Persistent lane: compile the plan, then replay it, so the plan
      // compile/hit/replay counters show up in the merged report.
      dd.set_persistent(true);
      dd.exchange();
      ctx.comm.barrier();
      dd.exchange();
      ctx.comm.barrier();
      halo_errors += check_halos(dd, domain, a.quantities);

      merged.merge(dd.telemetry().metrics());
    });
    merged.merge(substrate.metrics());
    if (!checker.report().clean()) {
      ++findings;
      checker.report().write(std::cerr);
    }

    std::printf("\n=== config %s ===\n", cfg.name);
    std::printf("realized transfer set (rank 0):\n");
    std::printf("  %-16s %10s %14s\n", "method", "transfers", "bytes");
    for (const auto& [m, cb] : xfer_set)
      std::printf("  %-16s %10d %14zu\n", to_string(m), cb.first, cb.second);

    telemetry::CriticalPath cp(rec.records());
    const std::size_t msg_edges = cp.add_flow_edges(rec.flows());
    const std::size_t attached = cp.add_hb_edges(checker.hb_edges());
    const telemetry::Analysis an = cp.analyze();
    std::printf(
        "critical path over one recorded exchange (%zu spans, %zu message edges, "
        "%zu hb edges attached):\n",
        rec.records().size(), msg_edges, attached);
    std::printf("%s", an.str(5).c_str());
    last_analysis = an;
    if (std::string(cfg.name) == "all") trace_out = rec;
  }

  std::printf("\n=== merged telemetry (all ranks, all configs) ===\n");
  std::printf("  %-16s %10s %14s\n", "method", "messages", "bytes");
  for (const char* m : kMethodNames) {
    const std::string label = std::string("{method=\"") + m + "\"}";
    const std::uint64_t msgs = merged.counter_value("exchange_messages_total" + label);
    const std::uint64_t bytes = merged.counter_value("exchange_bytes_total" + label);
    std::printf("  %-16s %10llu %14llu\n", m, static_cast<unsigned long long>(msgs),
                static_cast<unsigned long long>(bytes));
  }
  const auto& lat = merged.histogram("exchange_latency_ns");
  std::printf("exchanges: %llu total, latency mean %s (min %s, max %s)\n",
              static_cast<unsigned long long>(merged.counter_value("exchanges_total")),
              sim::format_duration(static_cast<sim::Duration>(lat.mean())).c_str(),
              sim::format_duration(static_cast<sim::Duration>(lat.min())).c_str(),
              sim::format_duration(static_cast<sim::Duration>(lat.max())).c_str());
  std::printf("plan: %llu compiles, %llu hits, %llu replays\n",
              static_cast<unsigned long long>(merged.counter_value("plan_compiles_total")),
              static_cast<unsigned long long>(merged.counter_value("plan_hits_total")),
              static_cast<unsigned long long>(merged.counter_value("plan_replays_total")));
  std::printf("substrate: %llu GPU ops (%llu B), %llu MPI messages (%llu B)\n",
              static_cast<unsigned long long>(merged.counter_value("vgpu_ops_total")),
              static_cast<unsigned long long>(merged.counter_value("vgpu_bytes_total")),
              static_cast<unsigned long long>(merged.counter_value("mpi_messages_total")),
              static_cast<unsigned long long>(merged.counter_value("mpi_bytes_total")));

  if (!a.prom_file.empty()) {
    std::ofstream os(a.prom_file);
    telemetry::write_prometheus(os, merged);
    std::printf("Prometheus exposition written to %s\n", a.prom_file.c_str());
  }
  if (!a.json_file.empty()) {
    std::ofstream os(a.json_file);
    telemetry::write_report_json(os, merged, last_analysis);
    std::printf("JSON report written to %s\n", a.json_file.c_str());
  }
  if (a.trace.any()) {
    std::string err;
    if (!cli::write_trace_outputs(trace_out, a.trace, &err)) {
      std::fprintf(stderr, "telemetry_report: %s\n", err.c_str());
      return 2;
    }
    if (!a.trace.out.empty())
      std::printf("merged chrome trace written to %s\n", a.trace.out.c_str());
    if (!a.trace.merge.empty())
      std::printf("per-rank trace documents written to %s.rank*.json\n", a.trace.merge.c_str());
  }

  if (halo_errors != 0) {
    std::fprintf(stderr, "telemetry_report: %lld halo mismatches\n",
                 static_cast<long long>(halo_errors));
    return 1;
  }
  if (findings != 0) {
    std::fprintf(stderr, "telemetry_report: checker reported findings\n");
    return 1;
  }
  std::printf("halos bit-exact under telemetry; checker clean.\n");
  return 0;
}
