// fault_drill: script a mid-run fault against a live halo-exchange job and
// watch the library degrade instead of hanging.
//
//   fault_drill --drill peer --nodes 1 --rpn 2 --domain 64 --iters 2
//
// The drill fills every subdomain with coordinate-coded values, runs
// `iters` healthy exchanges, fires the scripted fault, then runs `iters`
// more. After every exchange the halos are checked bit-exactly against the
// reference; the tool exits non-zero on any mismatch. It prints the method
// histogram before/after (showing the §III-C demotions) and the "fault"
// trace lane (the injected events and each demotion decision).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "recover/recover.h"
#include "topo/archetype.h"
#include "trace/recorder.h"

using namespace stencil;
namespace fault = stencil::fault;

namespace {

float ref_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = ref_value({o.x + x, o.y + y, o.z + z}, q);
    }
  });
}

std::int64_t check_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq) {
  std::int64_t bad = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z)
        for (std::int64_t y = -r; y < sz.y + r; ++y)
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            if (x >= 0 && x < sz.x && y >= 0 && y < sz.y && z >= 0 && z < sz.z) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            bad += v(x, y, z) != ref_value(g, q);
          }
    }
  });
  return bad;
}

void print_histogram(const char* when, const std::map<Method, int>& h) {
  std::printf("  methods %s:", when);
  for (const auto& [m, n] : h) std::printf(" %s=%d", to_string(m), n);
  std::printf("\n");
}

struct Args {
  int nodes = 1;
  int rpn = 2;
  std::int64_t edge = 64;
  int radius = 1;
  int iters = 2;
  std::string drill = "all";  // peer | ipc | nic | cuda | all
  double fault_s = 1.0;
  std::uint64_t seed = 0x5eed;
  bool trace = false;
  // Elastic-recovery mode: script a *terminal* failure and survive it.
  bool recover = false;
  int kill_gpu = -1;   // global GPU id to kill at --fault-at
  int kill_node = -1;  // node id to kill at --fault-at
  std::int64_t cadence = 2;
};

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fault_drill: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (f == "--nodes" && (v = next("--nodes"))) a->nodes = std::atoi(v);
    else if (f == "--rpn" && (v = next("--rpn"))) a->rpn = std::atoi(v);
    else if (f == "--domain" && (v = next("--domain"))) a->edge = std::atoll(v);
    else if (f == "--radius" && (v = next("--radius"))) a->radius = std::atoi(v);
    else if (f == "--iters" && (v = next("--iters"))) a->iters = std::atoi(v);
    else if (f == "--drill" && (v = next("--drill"))) a->drill = v;
    else if (f == "--fault-at" && (v = next("--fault-at"))) a->fault_s = std::atof(v);
    else if (f == "--seed" && (v = next("--seed"))) a->seed = std::strtoull(v, nullptr, 0);
    else if (f == "--trace") a->trace = true;
    else if (f == "--recover") a->recover = true;
    else if (f == "--kill-gpu" && (v = next("--kill-gpu"))) a->kill_gpu = std::atoi(v);
    else if (f == "--kill-node" && (v = next("--kill-node"))) a->kill_node = std::atoi(v);
    else if (f == "--cadence" && (v = next("--cadence"))) a->cadence = std::atoll(v);
    else if (f == "--help") {
      std::printf(
          "usage: fault_drill [--drill peer|ipc|nic|cuda|all] [--nodes N] [--rpn R]\n"
          "                   [--domain EDGE] [--radius R] [--iters N]\n"
          "                   [--fault-at SECONDS] [--seed S] [--trace]\n"
          "       fault_drill --recover (--kill-gpu G | --kill-node N) [--cadence K]\n"
          "                   [--nodes N] [--rpn R] [--domain EDGE] [--iters N]\n"
          "                   [--fault-at SECONDS]\n"
          "\n"
          "--recover runs on a pcie_box with one GPU per rank (a killed GPU is a\n"
          "killed rank), buddy-checkpoints every K iterations, and survives the\n"
          "scripted terminal failure by shrinking and re-homing the orphans.\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "fault_drill: unknown flag '%s' (try --help)\n", f.c_str());
      return false;
    }
    if (v == nullptr && f != "--trace" && f != "--recover") return false;
  }
  return true;
}

// Survive a scripted terminal failure: checkpoint on a cadence, exchange,
// recover through the §13 ladder when the fault lands, and keep checking
// halos bit-exactly on the survivors.
int run_recover_drill(const Args& a) {
  const sim::Time t_fault = sim::from_seconds(a.fault_s);
  const Dim3 domain{a.edge, a.edge, a.edge};
  constexpr std::size_t kQuantities = 2;
  const int world = a.nodes * a.rpn;

  if (a.kill_gpu < 0 && a.kill_node < 0) {
    std::fprintf(stderr, "fault_drill: --recover needs --kill-gpu or --kill-node\n");
    return 2;
  }
  if (a.kill_gpu >= world || a.kill_node >= a.nodes) {
    std::fprintf(stderr, "fault_drill: kill target out of range (%d ranks, %d nodes)\n",
                 world, a.nodes);
    return 2;
  }

  fault::FaultPlan plan;
  plan.set_seed(a.seed);
  if (a.kill_gpu >= 0) plan.fail_gpu(t_fault, a.kill_gpu);
  if (a.kill_node >= 0) plan.fail_node(t_fault, a.kill_node);

  fault::Injector inj(plan);
  trace::Recorder rec;
  inj.set_recorder(&rec);
  // One GPU per rank so a dead GPU means a dead rank — the shape the
  // recovery ladder shrinks around.
  Cluster cluster(topo::pcie_box(a.rpn), a.nodes, a.rpn);
  cluster.set_recorder(&rec);
  cluster.set_fault_injector(&inj);

  std::printf("fault_drill: recover drill, %dn/%dr, domain %s, cadence %lld, fault at t=%s\n",
              a.nodes, a.rpn, domain.str().c_str(), static_cast<long long>(a.cadence),
              sim::format_duration(t_fault).c_str());

  std::int64_t failures = 0;
  int survivors = 0, casualties = 0;
  recover::RecoveryStats agg;
  const std::int64_t total = 2 * static_cast<std::int64_t>(a.iters);
  // Pace iterations so the fault lands mid-run: trip i starts no earlier
  // than i * (t_fault / iters), putting the failure around trip `iters`.
  const sim::Time slice = t_fault / (a.iters > 0 ? a.iters : 1);

  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(a.radius);
    for (std::size_t q = 0; q < kQuantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.realize();
    recover::RecoveryManager rm(ctx, dd, a.cadence);

    std::int64_t it = 0, trip = 0;
    while (it < total) {
      try {
        ctx.engine().sleep_until(slice * trip);
        ++trip;
        rm.maybe_checkpoint(it);
        fill(dd, kQuantities);
        dd.exchange();
        failures += check_halos(dd, domain, kQuantities);
        ++it;
      } catch (const std::exception& e) {
        const auto ev =
            recover::classify(e, ctx.comm.job(), ctx.rank(), ctx.engine().now());
        if (ev.kind == recover::FailureKind::kNone) throw;
        const std::int64_t back = rm.recover(ev, it);
        if (back == recover::RecoveryManager::kRankGone) {
          ++casualties;
          return;
        }
        it = back;
      }
    }
    ++survivors;
    if (rm.stats().recoveries > agg.recoveries) agg = rm.stats();
  });

  std::printf("fault lane:\n");
  for (const auto& r : rec.records()) {
    if (r.lane != "fault") continue;
    std::printf("  t=%-12s %s\n", sim::format_duration(r.start).c_str(), r.label.c_str());
  }
  std::printf("survivors %d, casualties %d, recoveries %llu, restore floor %lld, "
              "mttr %s, halo errors %lld\n",
              survivors, casualties, static_cast<unsigned long long>(agg.recoveries),
              static_cast<long long>(agg.last_floor),
              sim::format_duration(agg.last_mttr).c_str(),
              static_cast<long long>(failures));
  if (failures != 0 || casualties == 0 || survivors + casualties != world ||
      agg.recoveries == 0) {
    std::fprintf(stderr, "fault_drill: recovery drill failed\n");
    return 1;
  }
  std::printf("survived the incident; all survivor halos bit-exact.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, &a)) return 2;
  if (a.recover || a.kill_gpu >= 0 || a.kill_node >= 0) return run_recover_drill(a);
  const sim::Time t_fault = sim::from_seconds(a.fault_s);
  const Dim3 domain{a.edge, a.edge, a.edge};
  constexpr std::size_t kQuantities = 2;

  fault::FaultPlan plan;
  plan.set_seed(a.seed);
  const bool all = a.drill == "all";
  if (all || a.drill == "peer") plan.revoke_peer(t_fault, -1, -1);
  if (all || a.drill == "ipc") plan.invalidate_ipc(t_fault);
  if (all || a.drill == "nic") plan.degrade_link(t_fault, fault::LinkClass::kNic, -1, -1, 0.25);
  if (all || a.drill == "cuda") plan.disable_cuda_aware(t_fault);
  if (plan.events().empty()) {
    std::fprintf(stderr, "fault_drill: unknown drill '%s' (try --help)\n", a.drill.c_str());
    return 2;
  }

  fault::Injector inj(plan);
  trace::Recorder rec;
  inj.set_recorder(&rec);
  Cluster cluster(topo::summit(), a.nodes, a.rpn);
  cluster.set_recorder(&rec);
  cluster.set_fault_injector(&inj);

  std::printf("fault_drill: %s drill, %dn/%dr, domain %s, fault at t=%s\n", a.drill.c_str(),
              a.nodes, a.rpn, domain.str().c_str(), sim::format_duration(t_fault).c_str());
  std::int64_t failures = 0;
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(a.radius);
    for (std::size_t q = 0; q < kQuantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(MethodFlags::kAll |
                   (a.drill == "cuda" ? MethodFlags::kCudaAwareMpi : MethodFlags::kNone));
    dd.realize();
    if (ctx.rank() == 0) print_histogram("before", dd.local_method_histogram());

    auto epoch = [&](const char* tag) {
      for (int it = 0; it < a.iters; ++it) {
        fill(dd, kQuantities);
        ctx.comm.barrier();
        const double t0 = ctx.comm.wtime();
        dd.exchange();
        ctx.comm.barrier();
        const std::int64_t bad = check_halos(dd, domain, kQuantities);
        failures += bad;
        if (ctx.rank() == 0) {
          std::printf("  %s exchange %d: %.3f ms, halo errors: %lld\n", tag, it,
                      (ctx.comm.wtime() - t0) * 1e3, static_cast<long long>(bad));
        }
      }
    };
    epoch("healthy");
    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    epoch("degraded");
    if (ctx.rank() == 0) print_histogram("after", dd.local_method_histogram());
  });

  std::printf("fault lane:\n");
  for (const auto& r : rec.records()) {
    if (r.lane != "fault") continue;
    std::printf("  t=%-12s %s\n", sim::format_duration(r.start).c_str(), r.label.c_str());
  }
  if (a.trace) {
    std::printf("\n");
    rec.write_gantt(std::cout);
  }
  if (failures != 0) {
    std::fprintf(stderr, "fault_drill: %lld halo mismatches\n",
                 static_cast<long long>(failures));
    return 1;
  }
  std::printf("all halos bit-exact across the fault.\n");
  return 0;
}
