// fault_drill: script a mid-run fault against a live halo-exchange job and
// watch the library degrade instead of hanging.
//
//   fault_drill --drill peer --nodes 1 --rpn 2 --domain 64 --iters 2
//
// The drill fills every subdomain with coordinate-coded values, runs
// `iters` healthy exchanges, fires the scripted fault, then runs `iters`
// more. After every exchange the halos are checked bit-exactly against the
// reference; the tool exits non-zero on any mismatch. It prints the method
// histogram before/after (showing the §III-C demotions) and the "fault"
// trace lane (the injected events and each demotion decision).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "topo/archetype.h"
#include "trace/recorder.h"

using namespace stencil;
namespace fault = stencil::fault;

namespace {

float ref_value(Dim3 g, std::size_t q) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z) +
         static_cast<float>(q) * 4.0e6f;
}

void fill(DistributedDomain& dd, std::size_t nq) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      const Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x)
            v(x, y, z) = ref_value({o.x + x, o.y + y, o.z + z}, q);
    }
  });
}

std::int64_t check_halos(DistributedDomain& dd, Dim3 domain, std::size_t nq) {
  std::int64_t bad = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    for (std::size_t q = 0; q < nq; ++q) {
      auto v = ld.view<float>(q);
      for (std::int64_t z = -r; z < sz.z + r; ++z)
        for (std::int64_t y = -r; y < sz.y + r; ++y)
          for (std::int64_t x = -r; x < sz.x + r; ++x) {
            if (x >= 0 && x < sz.x && y >= 0 && y < sz.y && z >= 0 && z < sz.z) continue;
            const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
            bad += v(x, y, z) != ref_value(g, q);
          }
    }
  });
  return bad;
}

void print_histogram(const char* when, const std::map<Method, int>& h) {
  std::printf("  methods %s:", when);
  for (const auto& [m, n] : h) std::printf(" %s=%d", to_string(m), n);
  std::printf("\n");
}

struct Args {
  int nodes = 1;
  int rpn = 2;
  std::int64_t edge = 64;
  int radius = 1;
  int iters = 2;
  std::string drill = "all";  // peer | ipc | nic | cuda | all
  double fault_s = 1.0;
  std::uint64_t seed = 0x5eed;
  bool trace = false;
};

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fault_drill: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (f == "--nodes" && (v = next("--nodes"))) a->nodes = std::atoi(v);
    else if (f == "--rpn" && (v = next("--rpn"))) a->rpn = std::atoi(v);
    else if (f == "--domain" && (v = next("--domain"))) a->edge = std::atoll(v);
    else if (f == "--radius" && (v = next("--radius"))) a->radius = std::atoi(v);
    else if (f == "--iters" && (v = next("--iters"))) a->iters = std::atoi(v);
    else if (f == "--drill" && (v = next("--drill"))) a->drill = v;
    else if (f == "--fault-at" && (v = next("--fault-at"))) a->fault_s = std::atof(v);
    else if (f == "--seed" && (v = next("--seed"))) a->seed = std::strtoull(v, nullptr, 0);
    else if (f == "--trace") a->trace = true;
    else if (f == "--help") {
      std::printf(
          "usage: fault_drill [--drill peer|ipc|nic|cuda|all] [--nodes N] [--rpn R]\n"
          "                   [--domain EDGE] [--radius R] [--iters N]\n"
          "                   [--fault-at SECONDS] [--seed S] [--trace]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "fault_drill: unknown flag '%s' (try --help)\n", f.c_str());
      return false;
    }
    if (v == nullptr && f != "--trace") return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, &a)) return 2;
  const sim::Time t_fault = sim::from_seconds(a.fault_s);
  const Dim3 domain{a.edge, a.edge, a.edge};
  constexpr std::size_t kQuantities = 2;

  fault::FaultPlan plan;
  plan.set_seed(a.seed);
  const bool all = a.drill == "all";
  if (all || a.drill == "peer") plan.revoke_peer(t_fault, -1, -1);
  if (all || a.drill == "ipc") plan.invalidate_ipc(t_fault);
  if (all || a.drill == "nic") plan.degrade_link(t_fault, fault::LinkClass::kNic, -1, -1, 0.25);
  if (all || a.drill == "cuda") plan.disable_cuda_aware(t_fault);
  if (plan.events().empty()) {
    std::fprintf(stderr, "fault_drill: unknown drill '%s' (try --help)\n", a.drill.c_str());
    return 2;
  }

  fault::Injector inj(plan);
  trace::Recorder rec;
  inj.set_recorder(&rec);
  Cluster cluster(topo::summit(), a.nodes, a.rpn);
  cluster.set_recorder(&rec);
  cluster.set_fault_injector(&inj);

  std::printf("fault_drill: %s drill, %dn/%dr, domain %s, fault at t=%s\n", a.drill.c_str(),
              a.nodes, a.rpn, domain.str().c_str(), sim::format_duration(t_fault).c_str());
  std::int64_t failures = 0;
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(a.radius);
    for (std::size_t q = 0; q < kQuantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(MethodFlags::kAll |
                   (a.drill == "cuda" ? MethodFlags::kCudaAwareMpi : MethodFlags::kNone));
    dd.realize();
    if (ctx.rank() == 0) print_histogram("before", dd.local_method_histogram());

    auto epoch = [&](const char* tag) {
      for (int it = 0; it < a.iters; ++it) {
        fill(dd, kQuantities);
        ctx.comm.barrier();
        const double t0 = ctx.comm.wtime();
        dd.exchange();
        ctx.comm.barrier();
        const std::int64_t bad = check_halos(dd, domain, kQuantities);
        failures += bad;
        if (ctx.rank() == 0) {
          std::printf("  %s exchange %d: %.3f ms, halo errors: %lld\n", tag, it,
                      (ctx.comm.wtime() - t0) * 1e3, static_cast<long long>(bad));
        }
      }
    };
    epoch("healthy");
    ctx.engine().sleep_until(t_fault + sim::kMicrosecond);
    ctx.comm.barrier();
    epoch("degraded");
    if (ctx.rank() == 0) print_histogram("after", dd.local_method_histogram());
  });

  std::printf("fault lane:\n");
  for (const auto& r : rec.records()) {
    if (r.lane != "fault") continue;
    std::printf("  t=%-12s %s\n", sim::format_duration(r.start).c_str(), r.label.c_str());
  }
  if (a.trace) {
    std::printf("\n");
    rec.write_gantt(std::cout);
  }
  if (failures != 0) {
    std::fprintf(stderr, "fault_drill: %lld halo mismatches\n",
                 static_cast<long long>(failures));
    return 1;
  }
  std::printf("all halos bit-exact across the fault.\n");
  return 0;
}
