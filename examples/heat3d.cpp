// heat3d: 3D heat diffusion (7-point Jacobi stencil) on a multi-GPU,
// multi-node simulated cluster — the classic communication-bound workload
// the paper's introduction motivates.
//
//   T'(x,y,z) = T + alpha * (sum of 6 face neighbors - 6*T)
//
// Each step: halo exchange (radius 1, faces only), Jacobi update into the
// second buffer, swap. With periodic boundaries the scheme conserves total
// heat exactly, which the example verifies every few steps, and the hot
// Gaussian blob visibly diffuses (falling max, constant sum).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

namespace {

constexpr std::int64_t kEdge = 48;
constexpr int kSteps = 20;
constexpr float kAlpha = 0.1f;

double rank_sum_and_max(stencil::DistributedDomain& dd, std::size_t q, float* max_out) {
  double sum = 0.0;
  float mx = 0.0f;
  dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
    auto v = ld.view<float>(q);
    for (std::int64_t z = 0; z < ld.size().z; ++z)
      for (std::int64_t y = 0; y < ld.size().y; ++y)
        for (std::int64_t x = 0; x < ld.size().x; ++x) {
          sum += v(x, y, z);
          mx = std::max(mx, v(x, y, z));
        }
  });
  *max_out = mx;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  // --persistent: compile the selective exchange into a plan on the first
  // step and replay it every step after (the steady state of this solver).
  bool persistent = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--persistent") == 0) {
      persistent = true;
    } else {
      std::fprintf(stderr, "usage: heat3d [--persistent]\n");
      return 2;
    }
  }

  stencil::Cluster cluster(stencil::topo::summit(), /*nodes=*/1, /*ranks_per_node=*/6);

  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, {kEdge, kEdge, kEdge});
    dd.set_radius(1);
    dd.set_neighborhood(stencil::Neighborhood::kFaces);  // 7-point stencil
    const auto cur = dd.add_data<float>("T");
    const auto nxt = dd.add_data<float>("T_next");
    dd.set_methods(stencil::MethodFlags::kAll);
    dd.set_persistent(persistent);
    dd.realize();

    // Hot Gaussian blob at the domain center.
    dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
      auto v = ld.view<float>(cur);
      const stencil::Dim3 o = ld.origin();
      for (std::int64_t z = 0; z < ld.size().z; ++z)
        for (std::int64_t y = 0; y < ld.size().y; ++y)
          for (std::int64_t x = 0; x < ld.size().x; ++x) {
            const double dx = static_cast<double>(o.x + x) - kEdge / 2.0;
            const double dy = static_cast<double>(o.y + y) - kEdge / 2.0;
            const double dz = static_cast<double>(o.z + z) - kEdge / 2.0;
            v(x, y, z) = static_cast<float>(100.0 * std::exp(-(dx * dx + dy * dy + dz * dz) / 64.0));
          }
    });

    std::vector<double> rank_sums(static_cast<std::size_t>(ctx.comm.size()));
    double initial_total = 0.0;

    for (int step = 0; step <= kSteps; ++step) {
      if (step % 5 == 0) {
        float mx = 0.0f;
        const double mine = rank_sum_and_max(dd, cur, &mx);
        ctx.comm.allgather(&mine, rank_sums.data(), sizeof(double));
        double total = 0.0;
        for (double s : rank_sums) total += s;
        if (step == 0) initial_total = total;
        if (ctx.rank() == 0) {
          std::printf("step %3d  total heat %.6e (drift %.2e)  rank0 max %.3f  t=%.3f ms\n",
                      step, total, std::abs(total - initial_total) / initial_total, mx,
                      ctx.comm.wtime() * 1e3);
        }
      }
      if (step == kSteps) break;

      dd.exchange({cur});  // selective: only the field this sweep reads

      dd.for_each_subdomain([&](stencil::LocalDomain& ld) {
        const auto sz = ld.size();
        dd.launch_compute(ld, "jacobi", static_cast<std::uint64_t>(sz.volume()) * 8 * 4, [&ld] {
          auto t = ld.view<float>(0);
          auto tn = ld.view<float>(1);
          const auto s = ld.size();
          for (std::int64_t z = 0; z < s.z; ++z)
            for (std::int64_t y = 0; y < s.y; ++y)
              for (std::int64_t x = 0; x < s.x; ++x) {
                const float lap = t(x - 1, y, z) + t(x + 1, y, z) + t(x, y - 1, z) +
                                  t(x, y + 1, z) + t(x, y, z - 1) + t(x, y, z + 1) -
                                  6.0f * t(x, y, z);
                tn(x, y, z) = t(x, y, z) + kAlpha * lap;
              }
        });
      });
      dd.compute_synchronize();
      dd.for_each_subdomain([&](stencil::LocalDomain& ld) { ld.swap_data(cur, nxt); });
    }
  });

  std::printf("heat3d done\n");
  return 0;
}
