// watch_report — live monitoring quickstart (DESIGN.md §16).
//
// Attaches a stencil::watch to a 2-node cluster, runs a healthy
// calibration phase so the watch learns every wire's floor cost, then
// (with --degrade) re-runs the same exchange with node 0's NIC throttled.
// The watch notices each message's per-byte wire cost stretching past the
// learned floor and opens a congested-link incident — complete with the
// FlightRecorder tail captured at open time and an instant event in the
// chrome trace. The report prints the lane table, the live per-node cost
// factors placement would consult, and every incident.
//
//   watch_report                          # healthy run, clean report
//   watch_report --degrade                # induced congestion incident
//   watch_report --degrade --expect congestion   # CI self-check
//   watch_report --json watch.json        # watch-v1 snapshot
//   watch_report --metrics watch.prom     # Prometheus exposition
//
// Exits non-zero when --expect is given and the incident stream does not
// match (clean = no incidents at all, congestion = at least one
// congested-link incident on the throttled wire).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "fault/fault.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "topo/archetype.h"
#include "trace/recorder.h"
#include "watch/watch.h"

using namespace stencil;
namespace fault = stencil::fault;
namespace watch = stencil::watch;

namespace {

struct Args {
  int nodes = 2;
  int rpn = 2;
  // 96^3 keeps the internode faces above the congestion detector's
  // min-bytes vote gate (small messages are latency-dominated and silent).
  std::int64_t edge = 96;
  int iters = 4;
  bool degrade = false;
  double factor = 0.1;  ///< throttled NIC runs at this fraction of nominal
  std::string expect;   ///< "", "clean", "congestion"
  std::string json_path;
  std::string metrics_path;
};

bool parse(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (f == "--nodes" && (v = next())) a->nodes = std::atoi(v);
    else if (f == "--rpn" && (v = next())) a->rpn = std::atoi(v);
    else if (f == "--domain" && (v = next())) a->edge = std::atoll(v);
    else if (f == "--iters" && (v = next())) a->iters = std::atoi(v);
    else if (f == "--factor" && (v = next())) a->factor = std::atof(v);
    else if (f == "--degrade") a->degrade = true;
    else if (f == "--expect" && (v = next())) a->expect = v;
    else if (f == "--json" && (v = next())) a->json_path = v;
    else if (f == "--metrics" && (v = next())) a->metrics_path = v;
    else if (f == "--help") {
      std::printf("usage: watch_report [--nodes N] [--rpn R] [--domain EDGE] [--iters N]\n"
                  "                    [--degrade] [--factor F] [--expect clean|congestion]\n"
                  "                    [--json PATH] [--metrics PATH]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "watch_report: unknown flag '%s' (try --help)\n", f.c_str());
      return false;
    }
    if (v == nullptr && f != "--degrade") return false;
  }
  if (a->nodes < 2) {
    std::fprintf(stderr, "watch_report: needs at least 2 nodes (the drill throttles a NIC)\n");
    return false;
  }
  return true;
}

/// One exchange phase: every rank realizes the same domain and runs
/// `iters` halo exchanges.
void run_phase(Cluster& cluster, const Args& a) {
  const Dim3 domain{a.edge, a.edge, a.edge};
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, domain);
    dd.set_radius(1);
    dd.add_data<float>("q0");
    dd.realize();
    for (int it = 0; it < a.iters; ++it) {
      ctx.comm.barrier();
      dd.exchange();
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, &a)) return 2;

  trace::Recorder rec;
  telemetry::Telemetry tel;
  watch::Watch live;
  Cluster cluster(topo::summit(), a.nodes, a.rpn);
  cluster.set_mem_mode(vgpu::MemMode::kPhantom);
  cluster.set_recorder(&rec);
  cluster.set_telemetry(&tel);
  cluster.set_watch(&live);

  std::printf("watch_report: %d nodes x %d ranks, %lld^3 floats, %d iters/phase\n",
              a.nodes, a.rpn, static_cast<long long>(a.edge), a.iters);

  // Phase 1 — healthy calibration: the watch learns per-lane floors and the
  // published cost factors settle at 1.
  run_phase(cluster, a);
  live.publish();
  // Roll the measurement window so phase 2's cost factors come from phase
  // 2's own floors — a mid-life degradation is invisible to lifetime minima.
  live.clear_window();
  std::printf("calibrated: %llu messages, %llu exchange completions, publish epoch %llu\n",
              static_cast<unsigned long long>(live.messages()),
              static_cast<unsigned long long>(live.exchanges()),
              static_cast<unsigned long long>(live.publish_epoch()));

  // Phase 2 — optionally throttle node 0's NIC (both directions) and run
  // the same traffic again. Per-message occupancy now stretches past the
  // learned floor and the congestion detector opens an incident.
  fault::FaultPlan plan;
  fault::Injector inj(plan);
  if (a.degrade) {
    plan.degrade_link(0, fault::LinkClass::kNic, 0, -1, a.factor);
    plan.degrade_link(0, fault::LinkClass::kNic, -1, 0, a.factor);
    inj = fault::Injector(plan);
    cluster.set_fault_injector(&inj);
    std::printf("\nphase 2: node 0 NIC throttled to %.0f%% of nominal\n", a.factor * 100.0);
  } else {
    std::printf("\nphase 2: healthy re-run\n");
  }
  run_phase(cluster, a);
  live.publish();

  // --- the report ----------------------------------------------------------
  std::printf("\nlanes (per (src, dst, wire class)):\n");
  std::printf("  %-4s %-4s %-11s %8s %12s %12s %8s\n", "src", "dst", "class", "msgs",
              "bytes", "GB/s", "stretch");
  for (int s = 0; s < live.num_nodes(); ++s) {
    for (int d = 0; d < live.num_nodes(); ++d) {
      for (int c = 0; c < watch::kWireClasses; ++c) {
        const auto wc = static_cast<watch::WireClass>(c);
        const double bw = live.lane_bandwidth(s, d, wc);
        if (bw <= 0.0) continue;
        std::printf("  n%-3d n%-3d %-11s %8llu %12llu %12.2f %+7.1f%%\n", s, d,
                    watch::to_string(wc),
                    static_cast<unsigned long long>(live.lane_messages(s, d, wc)),
                    static_cast<unsigned long long>(live.lane_bytes(s, d, wc)), bw / 1e9,
                    live.lane_window_stretch(s, d, wc) * 100.0);
      }
    }
  }
  std::printf("\nlive node cost factors:");
  for (int n = 0; n < live.num_nodes(); ++n)
    std::printf("  n%d=%.2f", n, live.live_node_cost_factor(n));
  std::printf("\nexchange p95 (window): %.3f ms\n", live.exchange_p95_ms());

  std::printf("\nincidents (%llu opened, %d open):\n",
              static_cast<unsigned long long>(live.incidents_opened()), live.open_incidents());
  for (const auto& inc : live.incidents()) {
    std::printf("  [%s] %s  severity %.2f  opened %lld ns%s\n", watch::to_string(inc.kind),
                inc.subject.c_str(), inc.severity, static_cast<long long>(inc.opened),
                inc.closed != 0 ? " (closed)" : "");
    std::printf("      %s\n", inc.detail.c_str());
    if (!inc.flight_tail.empty()) {
      std::printf("      flight tail: %zu bytes captured\n", inc.flight_tail.size());
    }
  }
  if (live.incidents().empty()) std::printf("  (none)\n");

  if (!a.json_path.empty()) {
    std::ofstream os(a.json_path);
    live.write_snapshot_json(os);
    std::printf("\nwatch-v1 snapshot written to %s\n", a.json_path.c_str());
  }
  if (!a.metrics_path.empty()) {
    telemetry::MetricsRegistry reg;
    live.export_metrics(reg);
    std::ofstream os(a.metrics_path);
    telemetry::write_prometheus(os, reg);
    std::printf("prometheus metrics written to %s\n", a.metrics_path.c_str());
  }

  // --- self-check ----------------------------------------------------------
  if (a.expect == "clean") {
    if (live.incidents_opened() != 0) {
      std::fprintf(stderr, "watch_report: expected a clean run but %llu incident(s) opened\n",
                   static_cast<unsigned long long>(live.incidents_opened()));
      return 1;
    }
    std::printf("\nself-check: clean as expected\n");
  } else if (a.expect == "congestion") {
    if (live.incidents_of(watch::Incident::Kind::kCongestedLink) == 0) {
      std::fprintf(stderr, "watch_report: expected a congested-link incident, saw none\n");
      return 1;
    }
    std::printf("\nself-check: congestion detected as expected\n");
  } else if (!a.expect.empty()) {
    std::fprintf(stderr, "watch_report: unknown --expect '%s'\n", a.expect.c_str());
    return 2;
  }
  return 0;
}
