// plan_verify: compile the persistent exchange plans for a configuration and
// run the static exchange-protocol verifier (src/verify) over every cached
// plan — send/recv matching, deadlock freedom, tag hygiene, buffer hazards —
// with zero message execution beyond the planning exchanges themselves.
//
// Verdicts print as text; --json FILE additionally writes one deterministic
// JSON array (schema verify-v1, one object per plan, no timestamps) suitable
// for CI artifacts. Exit status: 0 when every plan verifies clean, 1 when any
// finding fires, 2 on usage errors.
//
// Usage: same options as exchange_explorer, plus --json FILE.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common_cli.h"
#include "plan/plan.h"
#include "verify/verify.h"

namespace cli = stencil::cli;
namespace verify = stencil::verify;

using stencil::Cluster;
using stencil::DistributedDomain;
using stencil::RankCtx;

namespace {

struct Verdict {
  std::string key;
  std::string json;
  std::string text;
  bool clean = true;
  std::size_t ops = 0;
  double micros = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  // Pre-scan --json FILE; every other flag goes through the shared parser.
  std::string json_path;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json requires a file argument\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    rest.push_back(argv[i]);
  }

  cli::Options opt;
  std::string err;
  if (!cli::parse(static_cast<int>(rest.size()), rest.data(), &opt, &err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  if (opt.help) {
    cli::print_usage("plan_verify");
    std::printf("  --json FILE     write per-plan verdicts as a JSON array\n");
    return 0;
  }

  std::vector<Verdict> verdicts;
  Cluster cluster(opt.arch, opt.nodes, opt.rpn);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);
  cluster.run([&](RankCtx& ctx) {
    DistributedDomain dd(ctx, opt.domain);
    dd.set_radius(opt.radius);
    for (int q = 0; q < opt.quantities; ++q) dd.add_data<float>("q" + std::to_string(q));
    dd.set_methods(opt.methods);
    dd.set_placement(opt.placement);
    dd.set_boundary(opt.boundary);
    dd.set_pack_mode(opt.pack);
    dd.set_remote_aggregation(opt.aggregate);
    dd.set_persistent(true);  // plans only exist for persistent exchanges
    dd.realize();

    // Compile the full-set plan plus one selective subset per quantity, the
    // configurations a production loop typically cycles through.
    ctx.comm.barrier();
    dd.exchange();
    for (int q = 0; q < opt.quantities; ++q) dd.exchange({static_cast<std::size_t>(q)});
    ctx.comm.barrier();

    if (ctx.rank() != 0) return;
    for (const auto& p : dd.plan_cache().entries()) {
      Verdict v;
      v.key = p->key.str();
      const auto t0 = std::chrono::steady_clock::now();
      const verify::ExchangeModel m = dd.verify_model(*p);
      const verify::Report rep = verify::verify(m);
      const auto t1 = std::chrono::steady_clock::now();
      v.micros = std::chrono::duration<double, std::micro>(t1 - t0).count();
      for (const auto& rp : m.ranks) v.ops += rp.ops.size();
      v.clean = rep.clean();
      std::ostringstream js, txt;
      rep.write_json(js, v.key);
      rep.write(txt);
      v.json = js.str();
      v.text = txt.str();
      verdicts.push_back(std::move(v));
    }
  });

  std::printf("== plan_verify: %s, %d node(s) x %d rank(s), methods %s%s ==\n",
              opt.domain.str().c_str(), opt.nodes, opt.rpn, opt.methods_name.c_str(),
              opt.aggregate ? ", aggregated" : "");
  bool all_clean = true;
  for (const Verdict& v : verdicts) {
    // Host wall time of the verifier itself (not simulated time); stays out
    // of the JSON so artifacts are byte-stable across runs.
    std::printf("plan { %s }: %s  [%zu modeled op(s), %.0f us]\n", v.key.c_str(),
                v.clean ? "clean" : "FINDINGS", v.ops, v.micros);
    if (!v.clean) {
      std::fputs(v.text.c_str(), stdout);
      all_clean = false;
    }
  }
  std::printf("%zu plan(s) verified, %s\n", verdicts.size(),
              all_clean ? "all clean" : "findings present");

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    os << "[";
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      if (i != 0) os << ",";
      os << verdicts[i].json;
    }
    os << "]\n";
    std::printf("verdicts written to %s\n", json_path.c_str());
  }
  return all_clean ? 0 : 1;
}
