// capability_tour: how the same application code adapts to different node
// designs. The library discovers each platform's topology and capabilities
// (peer access, CUDA-aware MPI) and specializes its communication — the
// user code below never changes. Compares a Summit-style node, a
// single-socket DGX-like node (all-peer), and a commodity PCIe box
// (no peer access, no CUDA-aware MPI).
#include <cstdio>

#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "topo/archetype.h"

namespace {

void tour(const stencil::topo::NodeArchetype& arch, int ranks_per_node) {
  std::printf("== %s (%d GPUs/node, %d ranks) ==\n", arch.name.c_str(), arch.gpus_per_node(),
              ranks_per_node);
  stencil::Cluster cluster(arch, /*nodes=*/2, ranks_per_node);
  cluster.set_mem_mode(stencil::vgpu::MemMode::kPhantom);

  std::vector<double> per_rank(static_cast<std::size_t>(2 * ranks_per_node));
  cluster.run([&](stencil::RankCtx& ctx) {
    stencil::DistributedDomain dd(ctx, {512, 512, 512});
    dd.set_radius(2);
    dd.add_data<float>("q0");
    dd.add_data<float>("q1");
    // Ask for everything; the library keeps what the platform supports.
    stencil::MethodFlags flags = stencil::MethodFlags::kAll;
    if (ctx.machine.arch().cuda_aware_mpi) {
      // Platforms with CUDA-aware MPI could use kAllCudaAware instead; the
      // paper found STAGED faster on Summit, so kAll is the default choice.
    }
    dd.set_methods(flags);
    dd.realize();

    if (ctx.rank() == 0) {
      std::printf("  rank 0 methods: ");
      for (const auto& [m, n] : dd.local_method_histogram()) {
        std::printf("%s x%d  ", to_string(m), n);
      }
      std::printf("\n");
    }
    ctx.comm.barrier();
    const double t0 = ctx.comm.wtime();
    dd.exchange();
    per_rank[static_cast<std::size_t>(ctx.rank())] = ctx.comm.wtime() - t0;
  });

  double worst = 0.0;
  for (double t : per_rank) worst = std::max(worst, t);
  std::printf("  exchange: %.3f ms (simulated, max over ranks)\n\n", worst * 1e3);
}

}  // namespace

int main() {
  std::printf("capability tour: one application, three node designs\n\n");
  tour(stencil::topo::summit(), 3);
  tour(stencil::topo::dgx_like(4), 2);
  tour(stencil::topo::pcie_box(2), 2);
  return 0;
}
