// tenant_drill — end-to-end multi-tenant correctness drill (DESIGN.md §15).
//
// Admits three tenants with seed-varied shapes onto one 4-node machine with
// REAL memory, fills every grid with an analytic coordinate encoding, runs
// the scheduled co-tenant wave plus per-tenant solo baselines, and verifies
// after the last exchange of every run that each halo cell holds the exact
// periodically-wrapped neighbor value. Because both the co-run and the solo
// re-runs must match the same analytic picture, passing means the co-tenant
// exchange is bit-exact vs running alone. The cross-tenant static verifier
// runs on every wave; --check additionally attaches the happens-before
// checker to all tenants at once.
//
//   tenant_drill [--seed N] [--policy packed|spread|aware] [--check]
//                [--iters N]
//
// Exits non-zero on any bad halo cell, checker finding, verify finding, or
// rejected job.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/checker.h"
#include "core/cluster.h"
#include "core/distributed_domain.h"
#include "core/local_domain.h"
#include "sched/sched.h"
#include "topo/archetype.h"

namespace sched = stencil::sched;
using stencil::Cluster;
using stencil::Dim3;
using stencil::DistributedDomain;
using stencil::LocalDomain;

namespace {

float expected_value(Dim3 g) {
  return static_cast<float>(g.x + 131 * g.y + 131 * 131 * g.z);
}

void fill_interior(DistributedDomain& dd) {
  dd.for_each_subdomain([&](LocalDomain& ld) {
    auto v = ld.view<float>(0);
    const Dim3 o = ld.origin();
    for (std::int64_t z = 0; z < ld.size().z; ++z) {
      for (std::int64_t y = 0; y < ld.size().y; ++y) {
        for (std::int64_t x = 0; x < ld.size().x; ++x) {
          v(x, y, z) = expected_value({o.x + x, o.y + y, o.z + z});
        }
      }
    }
  });
}

int count_bad_halos(DistributedDomain& dd, Dim3 domain) {
  int bad = 0;
  const int r = dd.radius().max();
  dd.for_each_subdomain([&](LocalDomain& ld) {
    const Dim3 sz = ld.size();
    const Dim3 o = ld.origin();
    auto v = ld.view<float>(0);
    for (std::int64_t z = -r; z < sz.z + r; ++z) {
      for (std::int64_t y = -r; y < sz.y + r; ++y) {
        for (std::int64_t x = -r; x < sz.x + r; ++x) {
          const bool halo = x < 0 || x >= sz.x || y < 0 || y >= sz.y || z < 0 || z >= sz.z;
          if (!halo) continue;
          const Dim3 g = Dim3{o.x + x, o.y + y, o.z + z}.wrap(domain);
          bad += v(x, y, z) != expected_value(g);
        }
      }
    }
  });
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  int seed = 0;
  int iters = 2;
  bool use_checker = false;
  sched::PlacePolicy place = sched::PlacePolicy::kNodeAware;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc) {
      seed = std::atoi(argv[++i]);
    } else if (a == "--iters" && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (a == "--check") {
      use_checker = true;
    } else if (a == "--policy" && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "packed") {
        place = sched::PlacePolicy::kPacked;
      } else if (p == "spread") {
        place = sched::PlacePolicy::kSpread;
      } else if (p == "aware") {
        place = sched::PlacePolicy::kNodeAware;
      } else {
        std::fprintf(stderr, "tenant_drill: unknown policy %s\n", p.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: tenant_drill [--seed N] [--policy packed|spread|aware] "
                   "[--check] [--iters N]\n");
      return a == "--help" ? 0 : 2;
    }
  }

  Cluster cluster(stencil::topo::summit(), 4, 6);
  stencil::check::Checker checker(cluster.engine());
  sched::Scheduler::Options opt;
  opt.place = place;
  opt.solo_baseline = true;  // solo re-runs repeat the fill + halo verify
  if (use_checker) opt.checker = &checker;
  sched::Scheduler scheduler(cluster, opt);

  // Seed-varied tenant mix: sizes, radii, and quantities rotate with the
  // seed so different seeds exercise different shapes and windows.
  std::atomic<int> bad{0};
  std::atomic<int> verified{0};
  struct Mix {
    int gpus, radius, quantities;
    Dim3 domain;
  };
  const Mix mixes[3] = {
      {8, 1 + seed % 2, 1, Dim3{48 + 8 * (seed % 3), 48, 48}},
      {4, 1 + (seed + 1) % 2, 2, Dim3{40, 40 + 8 * (seed % 2), 40}},
      {6, 1, 1, Dim3{36, 36, 36 + 4 * (seed % 4)}},
  };
  for (int t = 0; t < 3; ++t) {
    sched::JobSpec s;
    s.name = "job" + std::string(1, static_cast<char>('A' + t));
    s.user = "drill";
    s.gpus = mixes[t].gpus;
    s.domain = mixes[t].domain;
    s.radius = mixes[t].radius;
    s.quantities = mixes[t].quantities;
    s.iterations = iters;
    const Dim3 dom = mixes[t].domain;
    s.prologue = [](DistributedDomain& dd) { fill_interior(dd); };
    s.epilogue = [&bad, &verified, dom](DistributedDomain& dd) {
      bad += count_bad_halos(dd, dom);
      ++verified;
    };
    const int id = scheduler.submit(s);
    if (scheduler.state(id) == sched::JobState::kRejected) {
      std::fprintf(stderr, "tenant_drill: %s rejected: %s\n", s.name.c_str(),
                   scheduler.reject_reason(id).c_str());
      return 1;
    }
  }

  const sched::RunReport rep = scheduler.run();
  for (const auto& t : rep.tenants) {
    std::printf("%s  user=%s wave=%d nodes=%zu ranks=%d  p95=%.3f ms solo=%.3f ms "
                "interference=%+.1f%%\n",
                t.name.c_str(), t.user.c_str(), t.wave, t.nodes.size(), t.ranks, t.p95_ms,
                t.solo_p95_ms, t.interference * 100.0);
  }
  std::printf("seed %d, policy %s: %d tenant runs verified, %d bad halo cells, "
              "%zu verify findings\n",
              seed, to_string(place), verified.load(), bad.load(), rep.verify_findings);

  bool ok = bad.load() == 0 && rep.verify_findings == 0 && rep.tenants.size() == 3;
  for (const auto& d : rep.verify_details) std::fprintf(stderr, "  verify: %s\n", d.c_str());
  if (use_checker && !checker.report().clean()) {
    std::fprintf(stderr, "%s\n", checker.report().summary().c_str());
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS: co-tenant halos bit-exact vs solo, all plans admitted"
                         : "FAIL");
  return ok ? 0 : 1;
}
